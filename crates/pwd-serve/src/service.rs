//! The batch parse service.
//!
//! [`ParseService`] owns the sharded grammar cache and one session pool per
//! worker. [`ParseService::submit_batch`] is the throughput API: it fans a
//! slice of inputs across the fixed worker pool, letting workers steal work
//! over an atomic cursor (so one pathological input does not idle the other
//! workers), and returns per-input results in input order together with
//! batch metrics.

use derp::api::ForestSummary;
use derp::api::{BackendError, BackendMetrics, EnumLimits, ParseCount, ParseForest, Session};
use derp::{Diagnostic, RecoveryBudget};
use pwd_grammar::Cfg;
use pwd_lex::Lexeme;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::cache::{CacheMetrics, GrammarCache};
use crate::fault::{Fault, FaultPlan};
use crate::live::SessionStats;
use crate::obs::{ObsSamples, ServeObs};
use crate::pool::{PoolMetrics, SessionPool};
use pwd_obs::PromText;

/// Which per-request budget ([`ServiceConfig::max_tokens_per_input`] /
/// [`ServiceConfig::time_budget`]) a cancelled input ran out of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// The input had more tokens than the per-request cap.
    Tokens,
    /// The parse exceeded its wall-clock allowance and was cancelled
    /// between tokens.
    Time,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BudgetKind::Tokens => "token",
            BudgetKind::Time => "time",
        })
    }
}

/// Errors of the serving layer. Batch-level failures (unknown backend)
/// fail [`ParseService::submit_batch`] itself; per-input failures —
/// backend errors, caught worker panics, budget cancellations — are
/// reported per input in [`BatchReport::outcomes`] so one bad request
/// never takes down its batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The configured backend name is not in the `derp::api` roster.
    UnknownBackend {
        /// The rejected name.
        name: String,
    },
    /// No live session with this id (never opened, already finished, or
    /// currently being fed by another caller — live sessions are
    /// single-caller).
    UnknownSession {
        /// The rejected session id.
        id: u64,
    },
    /// The checkpoint id does not name a live checkpoint of this session
    /// (out of range, or discarded by an earlier rollback).
    UnknownCheckpoint {
        /// The session the lookup ran against.
        session: u64,
        /// The rejected checkpoint id.
        checkpoint: usize,
    },
    /// The backend rejected a session operation (unknown terminal kind,
    /// engine resource limit, stale checkpoint).
    Backend(BackendError),
    /// Opening the session would exceed [`ServiceConfig::max_live_sessions`]
    /// — finish or abort existing sessions first.
    SessionLimit {
        /// The configured cap.
        limit: usize,
    },
    /// A worker caught a panic while running this input. The pooled
    /// session that was executing it is *quarantined* — dropped on the
    /// floor instead of being checked back in, since a panic may have
    /// left its engine state inconsistent — and the worker keeps serving
    /// the rest of the batch.
    WorkerPanicked {
        /// The panic payload, rendered to text.
        message: String,
    },
    /// The input exceeded a per-request budget and the parse was
    /// cancelled (before it started for [`BudgetKind::Tokens`], between
    /// tokens for [`BudgetKind::Time`]).
    BudgetExceeded {
        /// Which budget ran out.
        kind: BudgetKind,
        /// The configured limit: a token count, or milliseconds.
        limit: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownBackend { name } => {
                write!(f, "unknown parser backend {name:?} (expected one of {:?})", {
                    derp::api::BACKEND_NAMES
                })
            }
            ServeError::UnknownSession { id } => {
                write!(f, "no live session {id} (finished, never opened, or in use)")
            }
            ServeError::UnknownCheckpoint { session, checkpoint } => {
                write!(f, "session {session} has no checkpoint {checkpoint}")
            }
            ServeError::Backend(e) => write!(f, "backend error: {e}"),
            ServeError::SessionLimit { limit } => {
                write!(f, "live session limit reached ({limit}); finish or abort sessions first")
            }
            ServeError::WorkerPanicked { message } => {
                write!(f, "worker panicked while parsing (session quarantined): {message}")
            }
            ServeError::BudgetExceeded { kind, limit } => {
                let unit = match kind {
                    BudgetKind::Tokens => "tokens",
                    BudgetKind::Time => "ms",
                };
                write!(f, "per-request {kind} budget exceeded ({limit} {unit}); parse cancelled")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<BackendError> for ServeError {
    fn from(e: BackendError) -> ServeError {
        ServeError::Backend(e)
    }
}

/// One input to parse: terminal kinds, or a lexeme stream when lexeme text
/// matters (PWD memoizes derivatives by token *value*).
#[derive(Debug, Clone)]
pub enum Input {
    /// A sequence of terminal kind names.
    Kinds(Vec<String>),
    /// A lexer output stream (kind + text per token).
    Lexemes(Vec<Lexeme>),
}

impl Input {
    /// Builds a kinds input from string slices.
    pub fn from_kinds(kinds: &[&str]) -> Input {
        Input::Kinds(kinds.iter().map(|k| k.to_string()).collect())
    }

    /// Builds a lexeme-stream input.
    pub fn from_lexemes(lexemes: Vec<Lexeme>) -> Input {
        Input::Lexemes(lexemes)
    }

    /// Number of tokens in this input.
    pub fn len(&self) -> usize {
        match self {
            Input::Kinds(k) => k.len(),
            Input::Lexemes(l) => l.len(),
        }
    }

    /// Is the input empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn kind_refs(&self) -> Vec<&str> {
        match self {
            Input::Kinds(k) => k.iter().map(String::as_str).collect(),
            Input::Lexemes(l) => l.iter().map(|x| x.kind.as_str()).collect(),
        }
    }
}

/// Parses one input into its shared forest: one streaming session, lexeme
/// texts reaching the engine where the input carries them.
fn forest_of(
    backend: &mut dyn derp::api::Parser,
    input: &Input,
) -> Result<ParseForest, BackendError> {
    backend.begin()?;
    match input {
        Input::Kinds(kinds) => {
            for k in kinds {
                backend.feed(k, k)?;
            }
        }
        Input::Lexemes(lexemes) => {
            for l in lexemes {
                backend.feed(&l.kind, &l.text)?;
            }
        }
    }
    backend.end_forest()
}

/// Renders up to `k` parse trees of a forest (depth-bounded so cyclic —
/// infinitely ambiguous — forests terminate; acyclic forests always fit in
/// their own graph depth).
fn top_k_trees(forest: &ParseForest, k: usize) -> Vec<String> {
    let limits = EnumLimits { max_trees: k, max_depth: forest.depth().saturating_mul(2) + 64 };
    forest.trees(limits).iter().map(|t| t.to_string()).collect()
}

/// How often (in tokens) a wall-clock budget is re-checked while feeding.
/// Reading the clock is tens of nanoseconds against microseconds of parse
/// work per token, but a stride keeps the check off the hot path entirely
/// for the common short inputs.
const DEADLINE_STRIDE: usize = 64;

/// Renders a caught panic payload to text for
/// [`ServeError::WorkerPanicked`]. `panic!` with a message produces a
/// `&str` or `String` payload; anything else (a `panic_any`) is opaque.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// The structured error for a parse cancelled by the wall-clock budget.
fn time_exceeded(config: &ServiceConfig) -> ServeError {
    ServeError::BudgetExceeded {
        kind: BudgetKind::Time,
        limit: config.time_budget.map_or(0, |d| d.as_millis() as u64),
    }
}

/// Feeds every token of `input` through an open-session `begin`/`feed`
/// loop, cancelling between tokens once `deadline` passes. The caller
/// closes the session (`end` / `end_forest`); on cancellation the session
/// is abandoned mid-parse and the pool's checkin `reset` reclaims it.
fn feed_under_deadline(
    backend: &mut dyn derp::api::Parser,
    input: &Input,
    deadline: Instant,
    config: &ServiceConfig,
) -> Result<(), ServeError> {
    backend.begin()?;
    let check = |i: usize| -> Result<(), ServeError> {
        if i.is_multiple_of(DEADLINE_STRIDE) && Instant::now() > deadline {
            return Err(time_exceeded(config));
        }
        Ok(())
    };
    match input {
        Input::Kinds(kinds) => {
            for (i, k) in kinds.iter().enumerate() {
                check(i)?;
                backend.feed(k, k)?;
            }
        }
        Input::Lexemes(lexemes) => {
            for (i, l) in lexemes.iter().enumerate() {
                check(i)?;
                backend.feed(&l.kind, &l.text)?;
            }
        }
    }
    Ok(())
}

/// Runs one input through a recovering [`Session`]: malformed tokens are
/// repaired within [`ServiceConfig::recovery`]'s budget instead of killing
/// the request, and the spanned [`Diagnostic`]s ride along in the outcome.
/// A wall-clock budget, when configured, cancels between feed strides.
fn run_recovering(
    backend: &mut dyn derp::api::Parser,
    input: &Input,
    config: &ServiceConfig,
    memo: &mut MemoEffectiveness,
    budget: RecoveryBudget,
) -> Result<ParseOutcome, ServeError> {
    let deadline = config.time_budget.map(|d| Instant::now() + d);
    let mut session = Session::open(&mut *backend)?;
    session.enable_recovery(budget);
    let check = |deadline: Option<Instant>| -> Result<(), ServeError> {
        match deadline {
            Some(dl) if Instant::now() > dl => Err(time_exceeded(config)),
            _ => Ok(()),
        }
    };
    match input {
        Input::Kinds(kinds) => {
            let refs: Vec<&str> = kinds.iter().map(String::as_str).collect();
            for chunk in refs.chunks(DEADLINE_STRIDE) {
                check(deadline)?;
                session.feed_all(chunk)?;
            }
        }
        Input::Lexemes(lexemes) => {
            for chunk in lexemes.chunks(DEADLINE_STRIDE) {
                check(deadline)?;
                session.feed_lexemes(chunk)?;
            }
        }
    }
    check(deadline)?;
    // Counting rides the forest path: a recovered parse has no meaningful
    // batch `parse_count` shim to fall back on (it would re-parse the raw,
    // unrepaired input).
    if config.forests || config.top_k_trees > 0 || config.count_parses {
        let (forest, diagnostics) = session.finish_forest_diagnostics()?;
        let m = backend.metrics();
        memo.absorb(&m);
        let summary = forest.summary();
        let trees = (config.top_k_trees > 0).then(|| top_k_trees(&forest, config.top_k_trees));
        return Ok(ParseOutcome {
            accepted: !summary.count.is_zero(),
            parse_count: config.count_parses.then_some(summary.count),
            forest: config.forests.then_some(summary),
            trees,
            stats: config.observability.then(|| SessionStats::for_input(input.len(), &m)),
            diagnostics: Some(diagnostics),
        });
    }
    let (accepted, diagnostics) = session.finish_with_diagnostics()?;
    let m = backend.metrics();
    memo.absorb(&m);
    Ok(ParseOutcome {
        accepted,
        parse_count: None,
        forest: None,
        trees: None,
        stats: config.observability.then(|| SessionStats::for_input(input.len(), &m)),
        diagnostics: Some(diagnostics),
    })
}

/// Runs one input on a checked-out backend, folding each engine run's cache
/// counters into `memo` (every run resets the engine's metrics, so they must
/// be read between runs, not after). With forest reporting off, the hot
/// lexeme path does no per-input allocation here; with it on, one forest
/// pass serves the verdict, the exact count, the summary, and the top-k
/// trees together. Per-request budgets are enforced here: the token cap
/// rejects oversized inputs before any engine work, and the wall-clock
/// budget cancels runaway parses between tokens.
fn run_input(
    backend: &mut dyn derp::api::Parser,
    input: &Input,
    config: &ServiceConfig,
    memo: &mut MemoEffectiveness,
) -> Result<ParseOutcome, ServeError> {
    if config.max_tokens_per_input > 0 && input.len() > config.max_tokens_per_input {
        return Err(ServeError::BudgetExceeded {
            kind: BudgetKind::Tokens,
            limit: config.max_tokens_per_input as u64,
        });
    }
    if let Some(budget) = config.recovery {
        return run_recovering(backend, input, config, memo, budget);
    }
    let deadline = config.time_budget.map(|d| Instant::now() + d);
    if config.forests || config.top_k_trees > 0 {
        let forest = match deadline {
            None => forest_of(backend, input)?,
            Some(dl) => {
                feed_under_deadline(backend, input, dl, config)?;
                backend.end_forest()?
            }
        };
        let m = backend.metrics();
        memo.absorb(&m);
        let summary = forest.summary();
        let trees = (config.top_k_trees > 0).then(|| top_k_trees(&forest, config.top_k_trees));
        return Ok(ParseOutcome {
            accepted: !summary.count.is_zero(),
            parse_count: config.count_parses.then_some(summary.count),
            forest: config.forests.then_some(summary),
            trees,
            stats: config.observability.then(|| SessionStats::for_input(input.len(), &m)),
            diagnostics: None,
        });
    }
    let accepted = match deadline {
        None => match input {
            Input::Kinds(_) => backend.recognize(&input.kind_refs())?,
            Input::Lexemes(l) => backend.recognize_lexemes(l)?,
        },
        Some(dl) => {
            feed_under_deadline(backend, input, dl, config)?;
            backend.end()?
        }
    };
    let mut m = backend.metrics();
    memo.absorb(&m);
    let parse_count = match config.count_parses {
        false => None,
        true => {
            let count = backend.parse_count(&input.kind_refs())?;
            m = backend.metrics();
            memo.absorb(&m);
            Some(count)
        }
    };
    Ok(ParseOutcome {
        accepted,
        parse_count,
        forest: None,
        trees: None,
        stats: config.observability.then(|| SessionStats::for_input(input.len(), &m)),
        diagnostics: None,
    })
}

/// The result of parsing one input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOutcome {
    /// Did the grammar accept the input?
    pub accepted: bool,
    /// Exact parse-tree count, when [`ServiceConfig::count_parses`] is set
    /// (with explicit [`ParseCount::Overflow`] / [`ParseCount::Infinite`]
    /// outcomes — never a silent wrap).
    pub parse_count: Option<ParseCount>,
    /// The shared-forest summary (count, depth, node count, canonical
    /// fingerprint), when [`ServiceConfig::forests`] is set.
    pub forest: Option<ForestSummary>,
    /// Up to [`ServiceConfig::top_k_trees`] rendered parse trees, when that
    /// is nonzero.
    pub trees: Option<Vec<String>>,
    /// Per-input resource stats (tokens fed, peak live nodes, arena bytes),
    /// when [`ServiceConfig::observability`] is set.
    pub stats: Option<SessionStats>,
    /// Spanned diagnostics from error recovery, when
    /// [`ServiceConfig::recovery`] is set (`Some(vec![])` for clean
    /// inputs). `None` means recovery was off for this request.
    pub diagnostics: Option<Vec<Diagnostic>>,
}

/// Engine cache-effectiveness counters summed over the inputs of a batch
/// (or the lifetime of a service): how well the derive memo and the
/// class-template layer served the traffic for a grammar. Zero for
/// memo-less backends (Earley, GLR).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoEffectiveness {
    /// Derive calls answered from the memo tables (including the
    /// class-template fast path).
    pub memo_hits: u64,
    /// Derive calls that missed every cache and did real work.
    pub memo_misses: u64,
    /// Lexeme-independent derivative subgraphs shared verbatim with a new
    /// lexeme of the same terminal class.
    pub template_shares: u64,
    /// Derivatives of a repeat terminal class re-instantiated along the
    /// patch path to fresh leaves (parse mode).
    pub template_instantiations: u64,
    /// Lazy-automaton states interned (one dense transition row each) on
    /// behalf of this grammar's traffic (recognize mode).
    pub auto_rows_built: u64,
    /// Tokens consumed by an automaton transition-table hit — the
    /// zero-construction fast path of the recognize loop.
    pub auto_table_hits: u64,
    /// Tokens that fell back to the interpreted derive path while the
    /// automaton was active (cold rows, or the row budget froze).
    pub auto_fallbacks: u64,
}

impl MemoEffectiveness {
    fn absorb(&mut self, m: &BackendMetrics) {
        self.memo_hits += m.memo_hits;
        self.memo_misses += m.memo_misses;
        self.template_shares += m.template_shares;
        self.template_instantiations += m.template_instantiations;
        self.auto_rows_built += m.auto_rows_built;
        self.auto_table_hits += m.auto_table_hits;
        self.auto_fallbacks += m.auto_fallbacks;
    }

    fn merge(&mut self, other: MemoEffectiveness) {
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.template_shares += other.template_shares;
        self.template_instantiations += other.template_instantiations;
        self.auto_rows_built += other.auto_rows_built;
        self.auto_table_hits += other.auto_table_hits;
        self.auto_fallbacks += other.auto_fallbacks;
    }

    /// Fraction of derive calls served from a cache, in `[0, 1]`, or `None`
    /// when no derive calls ran — an undefined ratio, not a 0% hit rate
    /// (memo-less backends and empty batches would otherwise read as
    /// pathologically cold caches).
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.memo_hits + self.memo_misses;
        (total != 0).then(|| self.memo_hits as f64 / total as f64)
    }

    /// Fraction of tokens consumed by the automaton's dense-table walk
    /// rather than the interpreted derive path, in `[0, 1]`, or `None` when
    /// the automaton never ran. The per-grammar table-hit rate: how
    /// DFA-like this grammar's steady-state traffic became.
    pub fn table_hit_ratio(&self) -> Option<f64> {
        let total = self.auto_table_hits + self.auto_fallbacks;
        (total != 0).then(|| self.auto_table_hits as f64 / total as f64)
    }
}

/// Batch-level throughput and reuse metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchMetrics {
    /// Inputs in the batch.
    pub inputs: usize,
    /// Inputs accepted.
    pub accepted: usize,
    /// Inputs that errored (unknown terminals, engine limits).
    pub errors: usize,
    /// Wall-clock for the whole batch (cache lookup included).
    pub elapsed: Duration,
    /// Workers that actually ran (≤ configured workers for small batches).
    pub workers_used: usize,
    /// Inputs processed by each worker that ran; the spread shows how well
    /// work-stealing balanced the batch.
    pub per_worker_inputs: Vec<usize>,
    /// Was the grammar already compiled when the batch arrived?
    pub cache_hit: bool,
    /// Engine cache effectiveness summed over the batch's inputs: memo
    /// hits/misses and class-template activity. This is the per-grammar
    /// signal for whether the derive cache is earning its keep on the
    /// traffic actually being served.
    pub memo: MemoEffectiveness,
}

/// Results of one batch: per-input outcomes in input order, plus metrics.
#[derive(Debug)]
pub struct BatchReport {
    /// One entry per input, in the order submitted. A rejected input is
    /// `Ok(ParseOutcome { accepted: false, .. })`; `Err` is reserved for
    /// malformed inputs (unknown terminal kinds), engine resource limits,
    /// per-request budget cancellations, and caught worker panics — one
    /// failing input never fails its batch.
    pub outcomes: Vec<Result<ParseOutcome, ServeError>>,
    /// Batch-level metrics.
    pub metrics: BatchMetrics,
}

/// Configuration of a [`ParseService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Fixed number of worker threads batches fan out over (≥ 1).
    pub workers: usize,
    /// Shards of the compiled-grammar cache (≥ 1).
    pub shards: usize,
    /// Backend name from the [`derp::api`] roster (`"pwd"` aliases
    /// `"pwd-improved"`); validated lazily at first use.
    pub backend: String,
    /// Also report the exact parse-tree count per input (all roster
    /// backends support counting via their shared forests).
    pub count_parses: bool,
    /// Report a [`ForestSummary`] per input: exact count, forest depth,
    /// packed node count, and the canonical fingerprint clients can use to
    /// compare parses across backends or service instances.
    pub forests: bool,
    /// Also render up to this many parse trees per input (0 = none).
    pub top_k_trees: usize,
    /// Upper bound on concurrently open live sessions — each holds a
    /// pooled backend (for PWD, a full engine arena), so abandoned opens
    /// must not accumulate without bound. Opens beyond the cap fail with
    /// [`ServeError::SessionLimit`].
    pub max_live_sessions: usize,
    /// Record request/queue-wait/execute latency histograms and engine
    /// phase timings, exposed via [`ParseService::metrics_text`] and
    /// [`ParseOutcome::stats`]. Off by default: with it off the service
    /// reads no clocks beyond the existing per-batch wall timer and arms no
    /// engine hooks.
    pub observability: bool,
    /// Per-request token cap (`0` = unlimited). Inputs longer than this
    /// are rejected with [`ServeError::BudgetExceeded`] before any engine
    /// work runs.
    pub max_tokens_per_input: usize,
    /// Per-request wall-clock budget (`None` = unlimited). A parse still
    /// running past it is cancelled between tokens with
    /// [`ServeError::BudgetExceeded`]; the abandoned session is reclaimed
    /// by the pool's epoch reset, not quarantined.
    pub time_budget: Option<Duration>,
    /// Bounded-budget error recovery (`None` = off). When set, inputs run
    /// through `derp`'s recovering [`Session`]: malformed tokens are
    /// repaired within this budget instead of failing the request, and
    /// each outcome carries its [`Diagnostic`]s
    /// ([`ParseOutcome::diagnostics`]).
    pub recovery: Option<RecoveryBudget>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: std::thread::available_parallelism().map_or(4, usize::from),
            shards: 8,
            backend: "pwd-improved".to_string(),
            count_parses: false,
            forests: false,
            top_k_trees: 0,
            max_live_sessions: 1024,
            observability: false,
            max_tokens_per_input: 0,
            time_budget: None,
            recovery: None,
        }
    }
}

/// Service-lifetime counters aggregated over the cache and all worker pools.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Compiled-grammar cache hits/misses.
    pub cache: CacheMetrics,
    /// Session fork/reuse totals summed over workers.
    pub sessions: PoolMetrics,
    /// Total inputs served.
    pub inputs: u64,
    /// Engine cache effectiveness summed over every input ever served.
    pub memo: MemoEffectiveness,
    /// Worker panics caught (each one quarantined a pooled session and
    /// failed exactly one request).
    pub panics_caught: u64,
    /// Pooled sessions discarded after a caught panic instead of being
    /// checked back in.
    pub sessions_quarantined: u64,
    /// Requests cancelled by a per-request token or wall-clock budget.
    pub budget_cancelled: u64,
    /// Requests whose error recovery applied at least one repair (emitted
    /// at least one diagnostic).
    pub inputs_recovered: u64,
    /// Total diagnostics emitted by error recovery across all requests.
    pub diagnostics_emitted: u64,
    /// Edit splices applied to live sessions.
    pub splices: u64,
    /// Tokens splices avoided refeeding (reused prefix plus
    /// convergence-skipped suffix), totalled over all splices.
    pub splice_tokens_reused: u64,
    /// Tokens splices refed through the engine, totalled.
    pub splice_tokens_refed: u64,
    /// Total distance (in tokens) between each splice's damage start and
    /// the checkpoint-ladder rung it restored.
    pub splice_ladder_distance: u64,
}

/// A thread-safe, batched parse service: sharded compiled-grammar cache +
/// per-worker session pools + a work-stealing batch runner.
///
/// See the [crate docs](crate) for the request lifecycle diagram.
pub struct ParseService {
    config: ServiceConfig,
    cache: GrammarCache,
    /// One slot per worker. A batch's worker `w` locks slot `w` for the
    /// whole batch — concurrent batches queue on the slots rather than
    /// stampeding session creation.
    slots: Vec<Mutex<SessionPool>>,
    /// Rotates which slot a small batch starts on, so concurrent small
    /// submitters spread over the pools instead of all queueing on slot 0.
    next_slot: AtomicUsize,
    inputs_served: AtomicUsize,
    /// Worker panics caught (== sessions quarantined; kept separate so a
    /// future non-quarantining recovery path can diverge them).
    panics_caught: AtomicU64,
    /// Pooled sessions dropped after a caught panic.
    sessions_quarantined: AtomicU64,
    /// Requests cancelled by a per-request budget.
    budget_cancelled: AtomicU64,
    /// Requests repaired by error recovery (≥ 1 diagnostic).
    inputs_recovered: AtomicU64,
    /// Diagnostics emitted by error recovery, totalled.
    diagnostics_emitted: AtomicU64,
    /// Edit splices applied to live sessions.
    pub(crate) splices: AtomicU64,
    /// Tokens splices avoided refeeding, totalled.
    pub(crate) splice_tokens_reused: AtomicU64,
    /// Tokens splices refed through the engine, totalled.
    pub(crate) splice_tokens_refed: AtomicU64,
    /// Splice rollback distances (damage start minus restored rung),
    /// totalled.
    pub(crate) splice_ladder_distance: AtomicU64,
    /// Lifetime engine cache-effectiveness totals (merged once per batch).
    memo_totals: Mutex<MemoEffectiveness>,
    /// Latency/phase histogram store, keyed by (backend, grammar
    /// fingerprint). Inert unless [`ServiceConfig::observability`] is set.
    pub(crate) obs: ServeObs,
    /// Live incremental sessions, keyed by id (see `crate::live`). An entry
    /// is *absent* while a caller is feeding it (taken out of the map), so
    /// the lock is never held across engine work.
    pub(crate) live: Mutex<HashMap<u64, crate::live::LiveSession>>,
    /// Monotonic live-session id source.
    pub(crate) next_session: AtomicU64,
    /// Open live sessions, **including** ones momentarily checked out of
    /// the registry by a call in flight — the registry length undercounts
    /// those, so the `max_live_sessions` cap is enforced on this counter
    /// (atomically: reserve-then-open, release on finish/abort).
    pub(crate) live_count: AtomicUsize,
}

impl ParseService {
    /// Creates a service with the given configuration (worker and shard
    /// counts are clamped to ≥ 1).
    pub fn new(mut config: ServiceConfig) -> ParseService {
        config.workers = config.workers.max(1);
        config.shards = config.shards.max(1);
        let cache = GrammarCache::new(config.shards, &config.backend);
        let slots = (0..config.workers).map(|_| Mutex::new(SessionPool::new())).collect();
        let obs = ServeObs::new(config.observability);
        ParseService {
            config,
            cache,
            slots,
            next_slot: AtomicUsize::new(0),
            inputs_served: AtomicUsize::new(0),
            panics_caught: AtomicU64::new(0),
            sessions_quarantined: AtomicU64::new(0),
            budget_cancelled: AtomicU64::new(0),
            inputs_recovered: AtomicU64::new(0),
            diagnostics_emitted: AtomicU64::new(0),
            splices: AtomicU64::new(0),
            splice_tokens_reused: AtomicU64::new(0),
            splice_tokens_refed: AtomicU64::new(0),
            splice_ladder_distance: AtomicU64::new(0),
            memo_totals: Mutex::new(MemoEffectiveness::default()),
            obs,
            live: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            live_count: AtomicUsize::new(0),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Parses one input (a batch of one; slots are assigned round-robin, so
    /// concurrent single submitters use different pools).
    ///
    /// # Errors
    ///
    /// [`ServeError`] — service-level failures (unknown backend) and
    /// per-input failures (backend errors, budget cancellations, caught
    /// panics) alike, since the batch has exactly one input.
    pub fn submit(&self, cfg: &Cfg, input: &Input) -> Result<ParseOutcome, ServeError> {
        let mut report = self.submit_batch(cfg, std::slice::from_ref(input))?;
        report.outcomes.pop().expect("batch of one has one outcome")
    }

    /// Fans `inputs` across the worker pool and returns per-input results in
    /// input order.
    ///
    /// The grammar is compiled at most once (per service) and shared; each
    /// worker checks sessions out of its own pool, so a warm batch does no
    /// compilation and no arena allocation — only epoch resets.
    ///
    /// # Errors
    ///
    /// [`ServeError`] for service-level failures (unknown backend). Per-input
    /// failures — unknown terminal kinds, engine limits, per-request budget
    /// cancellations, and even backend panics (caught, with the pooled
    /// session quarantined) — are reported in [`BatchReport::outcomes`]
    /// without failing the batch or losing a worker.
    pub fn submit_batch(&self, cfg: &Cfg, inputs: &[Input]) -> Result<BatchReport, ServeError> {
        self.submit_batch_with_faults(cfg, inputs, &FaultPlan::none())
    }

    /// [`submit_batch`](ParseService::submit_batch) with deterministic
    /// fault injection: each input whose index appears in `plan` fails in
    /// the planned way (worker panic, budget exhaustion, lex error)
    /// *inside* the worker, exercising the same catch/quarantine/report
    /// machinery real faults do. The contract chaos tests lean on: N
    /// planned faults cost exactly N failed requests — every other input
    /// parses normally and no worker is lost.
    pub fn submit_batch_with_faults(
        &self,
        cfg: &Cfg,
        inputs: &[Input],
        plan: &FaultPlan,
    ) -> Result<BatchReport, ServeError> {
        let t0 = Instant::now();
        let (entry, cache_hit) = self.cache.get_or_compile(cfg)?;

        let n = inputs.len();
        let workers_used = self.config.workers.min(n).max(1);
        let config = &self.config;
        let cursor = AtomicUsize::new(0);
        // Full batches take all slots anyway; smaller ones start at a
        // rotating offset so concurrent small batches use different pools.
        let slot_base = if workers_used < self.slots.len() {
            self.next_slot.fetch_add(1, Ordering::Relaxed)
        } else {
            0
        };

        let obs_on = self.obs.enabled();
        type WorkerOut =
            (Vec<(usize, Result<ParseOutcome, ServeError>)>, MemoEffectiveness, ObsSamples);
        let per_worker: Vec<WorkerOut> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers_used)
                .map(|w| {
                    let (entry, cursor) = (&entry, &cursor);
                    let (panics, quarantined) = (&self.panics_caught, &self.sessions_quarantined);
                    let slot = &self.slots[(slot_base + w) % self.slots.len()];
                    scope.spawn(move || {
                        let mut pool = slot.lock().expect("worker pool poisoned");
                        let mut out = Vec::new();
                        let mut memo = MemoEffectiveness::default();
                        let mut samples = ObsSamples::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let mut session = pool.checkout(entry);
                            let fault = plan.fault_for(i);
                            // The unwind boundary. Anything that panics in
                            // here — a backend bug, or an injected fault —
                            // becomes one failed request; the session that
                            // was running it is quarantined below, and the
                            // worker moves on to the next input.
                            let run = catch_unwind(AssertUnwindSafe(
                                || -> Result<ParseOutcome, ServeError> {
                                    match fault {
                                        Some(Fault::Panic) => {
                                            panic!("injected fault: panic on input {i}")
                                        }
                                        Some(Fault::BudgetExhaustion) => {
                                            return Err(ServeError::BudgetExceeded {
                                                kind: BudgetKind::Tokens,
                                                limit: 0,
                                            });
                                        }
                                        Some(Fault::LexError) => {
                                            // A genuine backend rejection: the
                                            // NUL-framed kind is outside every
                                            // grammar alphabet, so this travels
                                            // the real unknown-kind error path.
                                            let err = session
                                                .backend()
                                                .recognize(&["\u{0}injected-lex-error\u{0}"])
                                                .expect_err("control kind is in no alphabet");
                                            return Err(ServeError::Backend(err));
                                        }
                                        None => {}
                                    }
                                    if obs_on {
                                        // Queue wait = batch arrival to worker
                                        // pickup; execute = the engine run
                                        // itself. Engine phase histograms are
                                        // armed for exactly this input and
                                        // folded into the worker-local samples.
                                        let picked = Instant::now();
                                        session.backend().set_obs(true);
                                        let res = run_input(
                                            session.backend(),
                                            &inputs[i],
                                            config,
                                            &mut memo,
                                        );
                                        samples
                                            .queue_wait_ns
                                            .push(picked.duration_since(t0).as_nanos() as u64);
                                        samples.execute_ns.push(picked.elapsed().as_nanos() as u64);
                                        if let Some(p) = session.backend().metrics().phases {
                                            samples.absorb_phases(&p);
                                        }
                                        session.backend().set_obs(false);
                                        res
                                    } else {
                                        run_input(session.backend(), &inputs[i], config, &mut memo)
                                    }
                                },
                            ));
                            match run {
                                Ok(res) => {
                                    pool.checkin(session);
                                    out.push((i, res));
                                }
                                Err(payload) => {
                                    // Quarantine: a panic may have left the
                                    // engine's arenas inconsistent, so the
                                    // session is dropped, never re-pooled.
                                    drop(session);
                                    panics.fetch_add(1, Ordering::Relaxed);
                                    quarantined.fetch_add(1, Ordering::Relaxed);
                                    let message = panic_text(payload.as_ref());
                                    out.push((i, Err(ServeError::WorkerPanicked { message })));
                                }
                            }
                        }
                        (out, memo, samples)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().expect("worker infrastructure panicked outside the unwind boundary")
                })
                .collect()
        });

        let per_worker_inputs: Vec<usize> = per_worker.iter().map(|(c, _, _)| c.len()).collect();
        let fingerprint = entry.fingerprint();
        let mut memo = MemoEffectiveness::default();
        let mut outcomes: Vec<Option<Result<ParseOutcome, ServeError>>> = vec![None; n];
        for (chunk, worker_memo, samples) in per_worker {
            memo.merge(worker_memo);
            self.obs.fold(&self.config.backend, fingerprint, samples);
            for (i, res) in chunk {
                outcomes[i] = Some(res);
            }
        }
        let outcomes: Vec<_> =
            outcomes.into_iter().map(|o| o.expect("every input was assigned")).collect();

        self.inputs_served.fetch_add(n, Ordering::Relaxed);
        self.memo_totals.lock().expect("memo totals poisoned").merge(memo);
        if obs_on {
            let mut batch = ObsSamples::new();
            batch.request_ns.push(t0.elapsed().as_nanos() as u64);
            self.obs.fold(&self.config.backend, fingerprint, batch);
        }
        let accepted = outcomes.iter().filter(|r| matches!(r, Ok(o) if o.accepted)).count();
        let errors = outcomes.iter().filter(|r| r.is_err()).count();
        let (mut cancelled, mut recovered, mut diags) = (0u64, 0u64, 0u64);
        for res in &outcomes {
            match res {
                Ok(o) => {
                    if let Some(d) = &o.diagnostics {
                        if !d.is_empty() {
                            recovered += 1;
                            diags += d.len() as u64;
                        }
                    }
                }
                Err(ServeError::BudgetExceeded { .. }) => cancelled += 1,
                Err(_) => {}
            }
        }
        self.budget_cancelled.fetch_add(cancelled, Ordering::Relaxed);
        self.inputs_recovered.fetch_add(recovered, Ordering::Relaxed);
        self.diagnostics_emitted.fetch_add(diags, Ordering::Relaxed);
        Ok(BatchReport {
            outcomes,
            metrics: BatchMetrics {
                inputs: n,
                accepted,
                errors,
                elapsed: t0.elapsed(),
                workers_used,
                per_worker_inputs,
                cache_hit,
                memo,
            },
        })
    }

    /// Checks a backend out of the slot pools for the grammar (compiling it
    /// on a cache miss), handing ownership to a live session. All slots are
    /// scanned for an idle session before a fork is paid — a finished live
    /// session may have been released into any of them.
    pub(crate) fn checkout_backend(
        &self,
        cfg: &Cfg,
    ) -> Result<(u64, Box<dyn derp::api::Parser>), ServeError> {
        let (entry, _hit) = self.cache.get_or_compile(cfg)?;
        let fingerprint = entry.fingerprint();
        let base = self.next_slot.fetch_add(1, Ordering::Relaxed);
        for i in 0..self.slots.len() {
            let slot = &self.slots[(base + i) % self.slots.len()];
            if let Some(backend) = slot.lock().expect("worker pool poisoned").try_reuse(fingerprint)
            {
                return Ok((fingerprint, backend));
            }
        }
        let slot = &self.slots[base % self.slots.len()];
        let mut pool = slot.lock().expect("worker pool poisoned");
        Ok(pool.checkout(&entry).into_parts())
    }

    /// Returns a backend recovered from a finished live session to a slot
    /// pool (round-robin, like small batches).
    pub(crate) fn release_backend(&self, fingerprint: u64, backend: Box<dyn derp::api::Parser>) {
        let slot = self.next_slot.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        self.slots[slot].lock().expect("worker pool poisoned").release(fingerprint, backend);
    }

    /// Counts one input toward the service-lifetime totals.
    pub(crate) fn count_input(&self) {
        self.inputs_served.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds a finished live session's engine counters into the lifetime
    /// memo-effectiveness totals (the batch path absorbs per input; live
    /// sessions absorb once, at finish, before the backend is reset).
    pub(crate) fn absorb_memo(&self, m: &BackendMetrics) {
        self.memo_totals.lock().expect("memo totals poisoned").absorb(m);
    }

    /// Service-lifetime counters: cache hits/misses, session forks/reuses,
    /// inputs served.
    pub fn metrics(&self) -> ServiceMetrics {
        let sessions = self
            .slots
            .iter()
            .map(|s| s.lock().expect("worker pool poisoned").metrics())
            .fold(PoolMetrics::default(), |acc, m| PoolMetrics {
                forked: acc.forked + m.forked,
                reused: acc.reused + m.reused,
            });
        ServiceMetrics {
            cache: self.cache.metrics(),
            sessions,
            inputs: self.inputs_served.load(Ordering::Relaxed) as u64,
            memo: *self.memo_totals.lock().expect("memo totals poisoned"),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            sessions_quarantined: self.sessions_quarantined.load(Ordering::Relaxed),
            budget_cancelled: self.budget_cancelled.load(Ordering::Relaxed),
            inputs_recovered: self.inputs_recovered.load(Ordering::Relaxed),
            diagnostics_emitted: self.diagnostics_emitted.load(Ordering::Relaxed),
            splices: self.splices.load(Ordering::Relaxed),
            splice_tokens_reused: self.splice_tokens_reused.load(Ordering::Relaxed),
            splice_tokens_refed: self.splice_tokens_refed.load(Ordering::Relaxed),
            splice_ladder_distance: self.splice_ladder_distance.load(Ordering::Relaxed),
        }
    }

    /// Renders the service's lifetime metrics as a Prometheus-style text
    /// exposition document: always-on counters (inputs served, cache and
    /// pool activity, memo effectiveness, live-session gauge), plus — when
    /// [`ServiceConfig::observability`] is set — request/queue-wait/execute
    /// latency histograms and engine phase timings labelled by backend and
    /// grammar fingerprint.
    pub fn metrics_text(&self) -> String {
        let m = self.metrics();
        let mut prom = PromText::new();
        let labels = [("backend", self.config.backend.as_str())];
        prom.counter(
            "pwd_serve_inputs_total",
            "Inputs served over the service lifetime.",
            &labels,
            m.inputs,
        );
        prom.counter(
            "pwd_serve_cache_hits_total",
            "Compiled-grammar cache hits.",
            &labels,
            m.cache.hits,
        );
        prom.counter(
            "pwd_serve_cache_misses_total",
            "Compiled-grammar cache misses (compiles).",
            &labels,
            m.cache.misses,
        );
        prom.counter(
            "pwd_serve_sessions_forked_total",
            "Engine sessions created by forking a cached prototype.",
            &labels,
            m.sessions.forked,
        );
        prom.counter(
            "pwd_serve_sessions_reused_total",
            "Pooled engine sessions reused via epoch reset.",
            &labels,
            m.sessions.reused,
        );
        prom.gauge(
            "pwd_serve_live_sessions",
            "Currently open live (incremental) sessions.",
            &labels,
            self.live_count.load(Ordering::Relaxed) as f64,
        );
        prom.counter(
            "pwd_engine_memo_hits_total",
            "Derive calls answered from the memo tables.",
            &labels,
            m.memo.memo_hits,
        );
        prom.counter(
            "pwd_engine_memo_misses_total",
            "Derive calls that missed every cache.",
            &labels,
            m.memo.memo_misses,
        );
        prom.counter(
            "pwd_engine_template_shares_total",
            "Derivative subgraphs shared via the class-template layer.",
            &labels,
            m.memo.template_shares,
        );
        prom.counter(
            "pwd_engine_template_instantiations_total",
            "Class-template derivatives re-instantiated to fresh leaves.",
            &labels,
            m.memo.template_instantiations,
        );
        prom.counter(
            "pwd_engine_auto_rows_built_total",
            "Lazy-automaton states interned.",
            &labels,
            m.memo.auto_rows_built,
        );
        prom.counter(
            "pwd_engine_auto_table_hits_total",
            "Tokens consumed by a dense transition-table hit.",
            &labels,
            m.memo.auto_table_hits,
        );
        prom.counter(
            "pwd_engine_auto_fallbacks_total",
            "Tokens that fell back to the interpreted derive path.",
            &labels,
            m.memo.auto_fallbacks,
        );
        prom.counter(
            "pwd_serve_worker_panics_total",
            "Worker panics caught at the per-input unwind boundary.",
            &labels,
            m.panics_caught,
        );
        prom.counter(
            "pwd_serve_sessions_quarantined_total",
            "Pooled sessions discarded after a caught panic.",
            &labels,
            m.sessions_quarantined,
        );
        prom.counter(
            "pwd_serve_budget_cancelled_total",
            "Requests cancelled by a per-request token or time budget.",
            &labels,
            m.budget_cancelled,
        );
        prom.counter(
            "pwd_serve_inputs_recovered_total",
            "Requests repaired by error recovery (>= 1 diagnostic).",
            &labels,
            m.inputs_recovered,
        );
        prom.counter(
            "pwd_serve_diagnostics_total",
            "Diagnostics emitted by error recovery.",
            &labels,
            m.diagnostics_emitted,
        );
        prom.counter(
            "pwd_serve_splices_total",
            "Edit splices applied to live sessions.",
            &labels,
            m.splices,
        );
        prom.counter(
            "pwd_serve_splice_tokens_reused_total",
            "Tokens splices avoided refeeding (reused prefix + converged suffix).",
            &labels,
            m.splice_tokens_reused,
        );
        prom.counter(
            "pwd_serve_splice_tokens_refed_total",
            "Tokens splices refed through the engine.",
            &labels,
            m.splice_tokens_refed,
        );
        prom.counter(
            "pwd_serve_splice_ladder_distance_total",
            "Splice rollback distances (damage start minus restored rung), totalled.",
            &labels,
            m.splice_ladder_distance,
        );
        self.obs.render(&mut prom);
        prom.finish()
    }
}

impl fmt::Debug for ParseService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParseService")
            .field("config", &self.config)
            .field("metrics", &self.metrics())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwd_grammar::CfgBuilder;

    fn catalan() -> Cfg {
        let mut g = CfgBuilder::new("S");
        g.terminal("a");
        g.rule("S", &["S", "S"]);
        g.rule("S", &["a"]);
        g.build().unwrap()
    }

    fn a_inputs(lens: &[usize]) -> Vec<Input> {
        lens.iter().map(|&n| Input::from_kinds(&vec!["a"; n])).collect()
    }

    #[test]
    fn batch_results_come_back_in_input_order() {
        let service = ParseService::new(ServiceConfig {
            workers: 3,
            count_parses: true,
            ..Default::default()
        });
        let cfg = catalan();
        // Mix sizes so work-stealing actually interleaves completion order.
        let lens = [4, 0, 7, 1, 6, 2, 5, 3, 8, 1, 4, 0];
        let report = service.submit_batch(&cfg, &a_inputs(&lens)).unwrap();
        assert_eq!(report.outcomes.len(), lens.len());
        for (i, (&len, out)) in lens.iter().zip(&report.outcomes).enumerate() {
            let out = out.as_ref().unwrap();
            assert_eq!(out.accepted, len > 0, "input {i} (length {len})");
            // Catalan counts pin the slot to the right input, not just the
            // right verdict: C(n-1) parse trees for n ≥ 1 leaves.
            let expect = match len as u128 {
                0 => 0,
                n => (0..n - 1).fold(1, |c, k| c * 2 * (2 * k + 1) / (k + 2)),
            };
            assert_eq!(out.parse_count, Some(ParseCount::Finite(expect)), "input {i}");
        }
        assert_eq!(report.metrics.inputs, lens.len());
        assert_eq!(report.metrics.accepted, lens.iter().filter(|&&l| l > 0).count());
        assert_eq!(report.metrics.workers_used, 3);
        assert_eq!(report.metrics.per_worker_inputs.iter().sum::<usize>(), lens.len());
    }

    #[test]
    fn second_batch_hits_cache_and_reuses_sessions() {
        let service = ParseService::new(ServiceConfig { workers: 2, ..Default::default() });
        let cfg = catalan();
        let first = service.submit_batch(&cfg, &a_inputs(&[1, 2, 3, 4])).unwrap();
        assert!(!first.metrics.cache_hit);
        let second = service.submit_batch(&cfg, &a_inputs(&[2, 2, 2, 2])).unwrap();
        assert!(second.metrics.cache_hit, "same grammar must not recompile");
        let m = service.metrics();
        assert_eq!(m.cache, CacheMetrics { hits: 1, misses: 1 });
        assert_eq!(m.inputs, 8);
        assert!(
            m.sessions.reused >= m.sessions.forked,
            "pooled sessions must dominate forks on a warm service: {:?}",
            m.sessions
        );
    }

    #[test]
    fn dfa_backend_reuses_automaton_rows_across_batches() {
        let service = ParseService::new(ServiceConfig {
            workers: 1,
            backend: "pwd-dfa".to_string(),
            ..Default::default()
        });
        let cfg = catalan();
        let first = service.submit_batch(&cfg, &a_inputs(&[1, 2, 3, 4])).unwrap();
        let m1 = first.metrics.memo;
        assert!(m1.auto_rows_built > 0, "cold batch interns states: {m1:?}");
        // The second batch replays warm prefixes on the pooled session: the
        // lazy automaton's rows survive the epoch reset, so every token is
        // a dense-table hit and no new rows are built.
        let second = service.submit_batch(&cfg, &a_inputs(&[2, 3, 4, 4])).unwrap();
        let m2 = second.metrics.memo;
        assert_eq!(m2.auto_rows_built, 0, "pooled session keeps compiled rows: {m2:?}");
        assert_eq!(m2.auto_fallbacks, 0, "warm traffic never leaves the table: {m2:?}");
        assert!(m2.auto_table_hits > 0, "{m2:?}");
        assert_eq!(m2.table_hit_ratio(), Some(1.0), "{m2:?}");
        // Lifetime totals fold both batches.
        let lifetime = service.metrics().memo;
        assert_eq!(lifetime.auto_rows_built, m1.auto_rows_built);
        assert_eq!(lifetime.auto_table_hits, m1.auto_table_hits + m2.auto_table_hits);
    }

    #[test]
    fn per_input_errors_do_not_fail_the_batch() {
        let service = ParseService::new(ServiceConfig { workers: 2, ..Default::default() });
        let cfg = catalan();
        let inputs =
            vec![Input::from_kinds(&["a"]), Input::from_kinds(&["NOPE"]), Input::from_kinds(&[])];
        let report = service.submit_batch(&cfg, &inputs).unwrap();
        assert!(report.outcomes[0].as_ref().unwrap().accepted);
        let err = report.outcomes[1].as_ref().unwrap_err();
        assert!(matches!(err, ServeError::Backend(_)), "{err:?}");
        assert!(err.to_string().contains("NOPE"));
        assert!(!report.outcomes[2].as_ref().unwrap().accepted);
        assert_eq!(report.metrics.errors, 1);
    }

    #[test]
    fn injected_panic_is_caught_quarantined_and_survivable() {
        let service = ParseService::new(ServiceConfig { workers: 2, ..Default::default() });
        let cfg = catalan();
        let plan = FaultPlan::none().inject(1, Fault::Panic);
        let report =
            service.submit_batch_with_faults(&cfg, &a_inputs(&[1, 2, 3, 4]), &plan).unwrap();
        // Exactly the planned input failed, with a structured error.
        let err = report.outcomes[1].as_ref().unwrap_err();
        assert!(
            matches!(err, ServeError::WorkerPanicked { message } if message.contains("injected")),
            "{err:?}"
        );
        for i in [0, 2, 3] {
            assert!(report.outcomes[i].as_ref().unwrap().accepted, "input {i} must still parse");
        }
        assert_eq!(report.metrics.errors, 1);
        let m = service.metrics();
        assert_eq!(m.panics_caught, 1);
        assert_eq!(m.sessions_quarantined, 1);
        // The service keeps serving after the quarantine.
        let clean = service.submit_batch(&cfg, &a_inputs(&[2, 2])).unwrap();
        assert!(clean.outcomes.iter().all(|o| o.as_ref().unwrap().accepted));
        let text = service.metrics_text();
        assert!(
            text.contains("pwd_serve_worker_panics_total{backend=\"pwd-improved\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("pwd_serve_sessions_quarantined_total{backend=\"pwd-improved\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn token_budget_rejects_oversized_inputs_before_parsing() {
        let service = ParseService::new(ServiceConfig {
            workers: 2,
            max_tokens_per_input: 3,
            ..Default::default()
        });
        let report = service.submit_batch(&catalan(), &a_inputs(&[2, 5, 3])).unwrap();
        assert!(report.outcomes[0].as_ref().unwrap().accepted);
        assert_eq!(
            report.outcomes[1].as_ref().unwrap_err(),
            &ServeError::BudgetExceeded { kind: BudgetKind::Tokens, limit: 3 }
        );
        assert!(report.outcomes[2].as_ref().unwrap().accepted, "exactly at the cap is fine");
        assert_eq!(service.metrics().budget_cancelled, 1);
        let text = service.metrics_text();
        assert!(
            text.contains("pwd_serve_budget_cancelled_total{backend=\"pwd-improved\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn time_budget_cancels_runaway_parses_between_tokens() {
        let service = ParseService::new(ServiceConfig {
            workers: 1,
            time_budget: Some(Duration::ZERO),
            ..Default::default()
        });
        // A zero allowance trips the very first deadline check, making the
        // cancellation deterministic without needing a pathological input.
        let report = service.submit_batch(&catalan(), &a_inputs(&[64])).unwrap();
        assert!(
            matches!(
                report.outcomes[0].as_ref().unwrap_err(),
                ServeError::BudgetExceeded { kind: BudgetKind::Time, .. }
            ),
            "{:?}",
            report.outcomes[0]
        );
        assert_eq!(service.metrics().budget_cancelled, 1);
        // The abandoned mid-parse session was reclaimed by the pool's epoch
        // reset, not leaked or quarantined: the next request reuses it.
        let clean = service.submit_batch(&catalan(), &a_inputs(&[0])).unwrap();
        assert!(!clean.outcomes[0].as_ref().unwrap().accepted, "ε is rejected, not errored");
        assert_eq!(service.metrics().sessions_quarantined, 0);
        assert!(service.metrics().sessions.reused >= 1, "{:?}", service.metrics().sessions);
    }

    #[test]
    fn recovery_repairs_malformed_inputs_and_reports_diagnostics() {
        let mut g = CfgBuilder::new("S");
        g.terminal("a");
        g.terminal("b");
        g.rule("S", &["a", "b"]);
        g.rule("S", &["a", "b", "S"]);
        let cfg = g.build().unwrap();
        let service = ParseService::new(ServiceConfig {
            workers: 2,
            recovery: Some(derp::RecoveryBudget::default()),
            ..Default::default()
        });
        let inputs = vec![
            Input::from_kinds(&["a", "b"]),               // clean
            Input::from_kinds(&["a", "a", "b"]),          // needs one repair
            Input::from_kinds(&["a", "NOT-A-KIND", "b"]), // unknown kind, repaired
        ];
        let report = service.submit_batch(&cfg, &inputs).unwrap();
        let clean = report.outcomes[0].as_ref().unwrap();
        assert!(clean.accepted);
        assert_eq!(clean.diagnostics.as_deref(), Some(&[][..]), "clean input: no diagnostics");
        for i in [1, 2] {
            let out = report.outcomes[i].as_ref().unwrap();
            assert!(out.accepted, "input {i} must be repaired into acceptance");
            assert!(!out.diagnostics.as_deref().unwrap().is_empty(), "input {i}");
        }
        let m = service.metrics();
        assert_eq!(m.inputs_recovered, 2);
        assert!(m.diagnostics_emitted >= 2);
        let text = service.metrics_text();
        assert!(
            text.contains("pwd_serve_inputs_recovered_total{backend=\"pwd-improved\"} 2"),
            "{text}"
        );
        assert!(text.contains("pwd_serve_diagnostics_total"), "{text}");
    }

    #[test]
    fn recovery_counts_parses_through_the_forest() {
        let service = ParseService::new(ServiceConfig {
            workers: 1,
            count_parses: true,
            recovery: Some(derp::RecoveryBudget::default()),
            ..Default::default()
        });
        let report = service.submit_batch(&catalan(), &a_inputs(&[4])).unwrap();
        let out = report.outcomes[0].as_ref().unwrap();
        assert!(out.accepted);
        assert_eq!(out.parse_count, Some(ParseCount::Finite(5)), "C3 on a clean input");
        assert_eq!(out.diagnostics.as_deref(), Some(&[][..]));
    }

    #[test]
    fn empty_batch_is_fine() {
        let service = ParseService::new(ServiceConfig::default());
        let report = service.submit_batch(&catalan(), &[]).unwrap();
        assert!(report.outcomes.is_empty());
        assert_eq!(report.metrics.inputs, 0);
    }

    #[test]
    fn unknown_backend_fails_the_batch() {
        let service =
            ParseService::new(ServiceConfig { backend: "bison".to_string(), ..Default::default() });
        let err = service.submit_batch(&catalan(), &a_inputs(&[1])).unwrap_err();
        assert!(err.to_string().contains("bison"));
    }

    #[test]
    fn every_roster_backend_serves() {
        let cfg = catalan();
        for &name in derp::api::BACKEND_NAMES {
            let service = ParseService::new(ServiceConfig {
                workers: 2,
                backend: name.to_string(),
                ..Default::default()
            });
            let report = service.submit_batch(&cfg, &a_inputs(&[0, 1, 3])).unwrap();
            let verdicts: Vec<bool> =
                report.outcomes.iter().map(|o| o.as_ref().unwrap().accepted).collect();
            assert_eq!(verdicts, vec![false, true, true], "{name}");
        }
    }

    #[test]
    fn batch_metrics_expose_memo_effectiveness() {
        let service = ParseService::new(ServiceConfig { workers: 2, ..Default::default() });
        let report = service.submit_batch(&catalan(), &a_inputs(&[3, 4, 5, 6])).unwrap();
        let memo = report.metrics.memo;
        assert!(memo.memo_misses > 0, "real derivation work happened: {memo:?}");
        assert!(memo.memo_hits > 0, "repeated tokens must hit the memo: {memo:?}");
        let ratio = memo.hit_ratio().unwrap();
        assert!(ratio > 0.0 && ratio < 1.0, "{memo:?}");
        let lifetime = service.metrics().memo;
        assert_eq!(lifetime, memo, "one batch served, so lifetime == batch");

        // Memo-less baselines report zeros rather than garbage.
        let earley = ParseService::new(ServiceConfig {
            workers: 2,
            backend: "earley".to_string(),
            ..Default::default()
        });
        let report = earley.submit_batch(&catalan(), &a_inputs(&[3, 4])).unwrap();
        assert_eq!(report.metrics.memo, MemoEffectiveness::default());
    }

    #[test]
    fn lexeme_diverse_traffic_reports_template_activity() {
        // A grammar where identifiers recur as a class but never as a
        // lexeme: the class-template layer must show up in batch metrics.
        let mut g = CfgBuilder::new("S");
        g.terminal("ID");
        g.terminal(";");
        g.rule("S", &["ID", ";", "S"]);
        g.rule("S", &["ID"]);
        let cfg = g.build().unwrap();
        let service = ParseService::new(ServiceConfig { workers: 2, ..Default::default() });
        let input = Input::from_lexemes(
            (0..40)
                .flat_map(|i| {
                    [
                        Lexeme { kind: "ID".into(), text: format!("v{i}"), offset: 2 * i },
                        Lexeme { kind: ";".into(), text: ";".into(), offset: 2 * i + 1 },
                    ]
                })
                .take(79) // trailing ID, no trailing ';'
                .collect(),
        );
        let report = service.submit_batch(&cfg, std::slice::from_ref(&input)).unwrap();
        assert!(report.outcomes[0].as_ref().unwrap().accepted);
        let memo = report.metrics.memo;
        assert!(
            memo.template_shares + memo.template_instantiations > 0,
            "fresh lexemes of a repeated class must exercise the templates: {memo:?}"
        );
    }

    #[test]
    fn batch_forest_summaries_and_top_k_trees() {
        let service = ParseService::new(ServiceConfig {
            workers: 2,
            forests: true,
            top_k_trees: 3,
            count_parses: true,
            ..Default::default()
        });
        let cfg = catalan();
        let report = service.submit_batch(&cfg, &a_inputs(&[10, 3, 0])).unwrap();
        // n=10: C9 = 4862 readings — countable exactly, enumerable only
        // partially; the summary carries the truth, the trees a sample.
        let big = report.outcomes[0].as_ref().unwrap();
        let summary = big.forest.expect("forests enabled");
        assert_eq!(summary.count, ParseCount::Finite(4862));
        assert!(summary.node_count > 0 && summary.depth > 0);
        assert_eq!(big.parse_count, Some(ParseCount::Finite(4862)));
        assert_eq!(big.trees.as_ref().unwrap().len(), 3);
        assert!(big.accepted);
        // Small and rejected inputs.
        let small = report.outcomes[1].as_ref().unwrap();
        assert_eq!(small.forest.unwrap().count, ParseCount::Finite(2));
        assert_eq!(small.trees.as_ref().unwrap().len(), 2);
        let rejected = report.outcomes[2].as_ref().unwrap();
        assert!(!rejected.accepted);
        assert_eq!(rejected.forest.unwrap().count, ParseCount::Finite(0));
        assert!(rejected.trees.as_ref().unwrap().is_empty());
    }

    #[test]
    fn forest_fingerprints_agree_across_service_backends() {
        // The cross-backend promise at the service level: every roster
        // backend reports the same canonical fingerprint for an input far
        // too ambiguous to compare by tree sets.
        let cfg = catalan();
        let mut prints = Vec::new();
        for &name in derp::api::BACKEND_NAMES {
            let service = ParseService::new(ServiceConfig {
                workers: 1,
                backend: name.to_string(),
                forests: true,
                ..Default::default()
            });
            let report = service.submit_batch(&cfg, &a_inputs(&[9])).unwrap();
            let summary = report.outcomes[0].as_ref().unwrap().forest.unwrap();
            assert_eq!(summary.count, ParseCount::Finite(1430), "{name}: C8");
            prints.push((name, summary.fingerprint));
        }
        assert!(
            prints.windows(2).all(|w| w[0].1 == w[1].1),
            "fingerprints must be backend-invariant: {prints:?}"
        );
    }

    #[test]
    fn metrics_text_exposes_counters_and_latency_histograms() {
        let service = ParseService::new(ServiceConfig {
            workers: 2,
            observability: true,
            ..Default::default()
        });
        let report = service.submit_batch(&catalan(), &a_inputs(&[3, 4, 5])).unwrap();
        let stats = report.outcomes[0].as_ref().unwrap().stats.expect("observability is on");
        assert_eq!(stats.tokens_fed, 3);
        assert!(stats.peak_live_nodes > 0, "{stats:?}");
        let text = service.metrics_text();
        assert!(text.contains("pwd_serve_inputs_total{backend=\"pwd-improved\"} 3"), "{text}");
        assert!(text.contains("# TYPE pwd_serve_request_duration_ns histogram"), "{text}");
        // Per-input latencies carry both the backend and the grammar label.
        assert!(
            text.contains("pwd_serve_execute_ns_count{backend=\"pwd-improved\",grammar="),
            "{text}"
        );
        assert!(text.contains("pwd_serve_queue_wait_ns_bucket"), "{text}");
        // The engine's own instrumented phases ride along — but only when
        // the hooks are compiled in (absent under `--no-default-features`).
        assert_eq!(text.contains("pwd_engine_phase_ns"), cfg!(feature = "obs"), "{text}");
    }

    #[test]
    fn observability_off_keeps_outcomes_and_exposition_lean() {
        let service = ParseService::new(ServiceConfig { workers: 1, ..Default::default() });
        let report = service.submit_batch(&catalan(), &a_inputs(&[3])).unwrap();
        assert!(report.outcomes[0].as_ref().unwrap().stats.is_none());
        let text = service.metrics_text();
        assert!(text.contains("pwd_serve_inputs_total"), "{text}");
        assert!(!text.contains("pwd_serve_request_duration_ns"), "{text}");
    }

    #[test]
    fn lexeme_inputs_reach_the_engine_with_text() {
        let mut g = CfgBuilder::new("S");
        g.terminal("NUM");
        g.rule("S", &["NUM", "S"]);
        g.rule("S", &["NUM"]);
        let cfg = g.build().unwrap();
        let service = ParseService::new(ServiceConfig { workers: 2, ..Default::default() });
        let lex = |texts: &[&str]| {
            Input::from_lexemes(
                texts
                    .iter()
                    .enumerate()
                    .map(|(i, t)| Lexeme { kind: "NUM".into(), text: t.to_string(), offset: i })
                    .collect(),
            )
        };
        let report = service.submit_batch(&cfg, &[lex(&["1", "2", "3"]), lex(&[])]).unwrap();
        assert!(report.outcomes[0].as_ref().unwrap().accepted);
        assert!(!report.outcomes[1].as_ref().unwrap().accepted);
    }
}
