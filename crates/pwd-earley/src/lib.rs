//! An Earley parser: the baseline standing in for Racket's
//! `parser-tools/cfg-parser` (itself an Earley variant) in the paper's
//! Figure-6 comparison.
//!
//! Standard Earley (1970) with the Aycock–Horspool nullable-prediction fix:
//! when the predictor introduces a nullable nonterminal, the item's dot is
//! also advanced over it immediately, which makes ε-rules sound without
//! repeated completer passes. The recognizer is `O(n³)` for arbitrary CFGs,
//! `O(n²)` for unambiguous ones.
//!
//! # Quick start
//!
//! ```
//! use pwd_earley::EarleyParser;
//! use pwd_grammar::CfgBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = CfgBuilder::new("S");
//! g.terminal("a");
//! g.rule("S", &["S", "S"]);
//! g.rule("S", &["a"]);
//! let parser = EarleyParser::new(&g.build()?);
//! assert!(parser.recognize_kinds(&["a", "a", "a"])?);
//! assert!(!parser.recognize_kinds(&[])?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pwd_forest::{EnumLimits, ParseForest, Tree};
use pwd_grammar::{analysis, build_sppf, Cfg, ProductionSpans, Symbol};
use std::collections::HashSet;
use std::fmt;

/// An Earley item: production, dot position, origin set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Item {
    prod: u32,
    dot: u32,
    origin: u32,
}

/// Error for token kinds outside the grammar's terminal alphabet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownKind {
    /// The offending kind name.
    pub kind: String,
    /// Its position in the input.
    pub position: usize,
}

impl fmt::Display for UnknownKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "token {} has kind {:?} outside the grammar", self.position, self.kind)
    }
}

impl std::error::Error for UnknownKind {}

/// An Earley parser compiled from a [`Cfg`].
#[derive(Debug, Clone)]
pub struct EarleyParser {
    cfg: Cfg,
    nullable: Vec<bool>,
}

/// Statistics from a recognition run (chart sizes drive the complexity
/// comparison tests).
#[derive(Debug, Clone, Default)]
pub struct EarleyStats {
    /// Number of items in each chart set.
    pub set_sizes: Vec<usize>,
    /// Total items across the chart.
    pub total_items: usize,
}

impl EarleyParser {
    /// Compiles the parser (precomputes the nullable set).
    pub fn new(cfg: &Cfg) -> EarleyParser {
        EarleyParser { cfg: cfg.clone(), nullable: analysis::nullable_nonterminals(cfg) }
    }

    /// The underlying grammar.
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// Recognizes a sequence of terminal indices.
    pub fn recognize(&self, tokens: &[u32]) -> bool {
        self.run(tokens).0
    }

    /// Recognizes a sequence of terminal kinds by name.
    ///
    /// # Errors
    ///
    /// [`UnknownKind`] if a kind is not a terminal of the grammar.
    pub fn recognize_kinds(&self, kinds: &[&str]) -> Result<bool, UnknownKind> {
        let toks = self.kinds_to_tokens(kinds)?;
        Ok(self.recognize(&toks))
    }

    /// Recognizes a lexeme stream (e.g. from `pwd_lex`).
    ///
    /// # Errors
    ///
    /// [`UnknownKind`] if a lexeme kind is not a terminal of the grammar.
    pub fn recognize_lexemes(&self, lexemes: &[pwd_lex::Lexeme]) -> Result<bool, UnknownKind> {
        let toks: Result<Vec<u32>, UnknownKind> = lexemes
            .iter()
            .enumerate()
            .map(|(i, l)| {
                self.cfg
                    .terminal_index(&l.kind)
                    .ok_or_else(|| UnknownKind { kind: l.kind.clone(), position: i })
            })
            .collect();
        Ok(self.recognize(&toks?))
    }

    /// Recognition plus chart statistics.
    pub fn recognize_with_stats(&self, tokens: &[u32]) -> (bool, EarleyStats) {
        self.run(tokens)
    }

    /// Converts kind names to terminal indices.
    ///
    /// # Errors
    ///
    /// [`UnknownKind`] for kinds outside the grammar.
    pub fn kinds_to_tokens(&self, kinds: &[&str]) -> Result<Vec<u32>, UnknownKind> {
        kinds
            .iter()
            .enumerate()
            .map(|(i, k)| {
                self.cfg
                    .terminal_index(k)
                    .ok_or_else(|| UnknownKind { kind: (*k).to_string(), position: i })
            })
            .collect()
    }

    fn run(&self, tokens: &[u32]) -> (bool, EarleyStats) {
        let mut chart = self.begin();
        for &t in tokens {
            self.feed(&mut chart, t);
        }
        let accepted = self.accepted(&chart);
        (accepted, chart.stats())
    }

    // ------------------------------------------------------------------
    // Incremental (streaming) recognition
    // ------------------------------------------------------------------

    /// Opens an incremental chart: Earley set 0, seeded with the start
    /// nonterminal's productions and closed under prediction/completion.
    ///
    /// Earley recognition is naturally left-to-right — set `i` depends only
    /// on sets `0..i` and token `i-1` — so the chart doubles as a streaming
    /// session: [`feed`](EarleyParser::feed) one token at a time, query
    /// [`accepted`](EarleyParser::accepted) between tokens, and snapshot a
    /// prefix with [`EarleyChart::checkpoint`] (rollback simply truncates
    /// the chart back to that prefix — earlier sets are never mutated by
    /// later feeds).
    pub fn begin(&self) -> EarleyChart {
        let mut chart = EarleyChart { sets: vec![Vec::new()], seen: vec![HashSet::new()] };
        for &pi in self.cfg.productions_of(self.cfg.start()) {
            chart.add(Item { prod: pi as u32, dot: 0, origin: 0 }, 0);
        }
        self.close(&mut chart, 0);
        chart
    }

    /// Feeds one token: scans the (already closed) frontier set over `tok`
    /// into a new set, then closes it. Returns `false` when the new set is
    /// empty — no continuation of the input can be accepted.
    ///
    /// Feeding a dead chart is permitted and stays dead (the empty set
    /// scans to another empty set), so a driver can keep feeding and let
    /// the final [`accepted`](EarleyParser::accepted) answer.
    pub fn feed(&self, chart: &mut EarleyChart, tok: u32) -> bool {
        let i = chart.sets.len() - 1;
        chart.sets.push(Vec::new());
        chart.seen.push(HashSet::new());
        // Scanner over the closed set i.
        for idx in 0..chart.sets[i].len() {
            let item = chart.sets[i][idx];
            let p = &self.cfg.productions()[item.prod as usize];
            if p.rhs.get(item.dot as usize) == Some(&Symbol::T(tok)) {
                chart.add(Item { dot: item.dot + 1, ..item }, i + 1);
            }
        }
        self.close(chart, i + 1);
        !chart.sets[i + 1].is_empty()
    }

    /// The terminals the chart's frontier can scan next — exactly the set
    /// of tokens for which [`feed`](EarleyParser::feed) would produce a
    /// non-empty set. Sorted and deduplicated. This is the candidate set
    /// for chart re-seeding error recovery: on a dead feed, the recoverer
    /// rolls the chart back to the failure frontier and re-seeds it by
    /// feeding one of these.
    pub fn expected_terminals(&self, chart: &EarleyChart) -> Vec<u32> {
        let mut out: Vec<u32> = chart
            .sets
            .last()
            .expect("chart has a frontier")
            .iter()
            .filter_map(|item| {
                let p = &self.cfg.productions()[item.prod as usize];
                match p.rhs.get(item.dot as usize) {
                    Some(Symbol::T(t)) => Some(*t),
                    _ => None,
                }
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Does the chart's current frontier accept the prefix fed so far?
    pub fn accepted(&self, chart: &EarleyChart) -> bool {
        chart.sets.last().expect("chart has a frontier").iter().any(|item| {
            let p = &self.cfg.productions()[item.prod as usize];
            p.lhs == self.cfg.start() && item.origin == 0 && item.dot as usize == p.rhs.len()
        })
    }

    /// Closes set `i` under prediction and completion (the scanner runs at
    /// [`feed`](EarleyParser::feed) time, when the next token is known).
    fn close(&self, chart: &mut EarleyChart, i: usize) {
        let mut idx = 0;
        while idx < chart.sets[i].len() {
            let item = chart.sets[i][idx];
            idx += 1;
            let p = &self.cfg.productions()[item.prod as usize];
            match p.rhs.get(item.dot as usize) {
                Some(Symbol::T(_)) => {
                    // Scanner — deferred to the next feed.
                }
                Some(Symbol::N(nt)) => {
                    // Predictor.
                    for &pi in self.cfg.productions_of(*nt) {
                        chart.add(Item { prod: pi as u32, dot: 0, origin: i as u32 }, i);
                    }
                    // Aycock–Horspool: skip over nullable nonterminals.
                    if self.nullable[*nt as usize] {
                        chart.add(Item { dot: item.dot + 1, ..item }, i);
                    }
                }
                None => {
                    // Completer. Iterate by index: sets[origin] grows while
                    // we scan when origin == i (ε-cycles).
                    let lhs = p.lhs;
                    let origin = item.origin as usize;
                    let mut j = 0;
                    while j < chart.sets[origin].len() {
                        let cand = chart.sets[origin][j];
                        j += 1;
                        let cp = &self.cfg.productions()[cand.prod as usize];
                        if cp.rhs.get(cand.dot as usize) == Some(&Symbol::N(lhs)) {
                            chart.add(Item { dot: cand.dot + 1, ..cand }, i);
                        }
                    }
                }
            }
        }
    }
}

/// The owned state of an incremental Earley recognition: the chart prefix
/// built so far. Opaque, and only constructible through
/// [`EarleyParser::begin`] (which seeds set 0 — an empty chart would
/// violate the "there is always a frontier set" invariant); drive it with
/// [`EarleyParser::feed`] and [`EarleyParser::accepted`].
#[derive(Debug, Clone)]
pub struct EarleyChart {
    sets: Vec<Vec<Item>>,
    seen: Vec<HashSet<Item>>,
}

/// A saved chart position: rollback truncates the chart to this prefix.
///
/// Later feeds never mutate earlier sets (the closure of set `i` only adds
/// to set `i`, and the scanner only adds to set `i+1`), so truncation
/// restores the state after `tokens_fed` tokens exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EarleyCheckpoint {
    sets: usize,
}

impl EarleyCheckpoint {
    /// Number of tokens fed when this checkpoint was taken.
    pub fn tokens_fed(&self) -> usize {
        self.sets - 1
    }
}

impl EarleyChart {
    /// Number of tokens fed so far.
    pub fn tokens_fed(&self) -> usize {
        self.sets.len() - 1
    }

    /// Is the frontier empty (no continuation can be accepted)?
    pub fn is_dead(&self) -> bool {
        self.sets.last().is_none_or(Vec::is_empty)
    }

    /// Saves the current position (the chart prefix length).
    pub fn checkpoint(&self) -> EarleyCheckpoint {
        EarleyCheckpoint { sets: self.sets.len() }
    }

    /// Restores a checkpoint by truncating back to its prefix length.
    ///
    /// The restore is exact **only** for a checkpoint taken on this chart's
    /// current timeline (no rollback past its position since it was taken).
    /// This layer cannot tell a stale or foreign checkpoint with a
    /// plausible length from a valid one — it would silently truncate to a
    /// prefix describing different tokens; callers that need that
    /// validation use the `derp::api` session layer, whose timeline guard
    /// rejects invalidated checkpoints exactly.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's prefix is longer than the chart currently
    /// holds.
    pub fn rollback(&mut self, cp: &EarleyCheckpoint) {
        assert!(
            cp.sets <= self.sets.len(),
            "checkpoint for {} sets cannot restore a chart of {}",
            cp.sets,
            self.sets.len()
        );
        self.sets.truncate(cp.sets);
        self.seen.truncate(cp.sets);
    }

    /// Chart-size statistics for the prefix fed so far.
    pub fn stats(&self) -> EarleyStats {
        EarleyStats {
            set_sizes: self.sets.iter().map(Vec::len).collect(),
            total_items: self.sets.iter().map(Vec::len).sum(),
        }
    }

    fn add(&mut self, item: Item, at: usize) {
        if self.seen[at].insert(item) {
            self.sets[at].push(item);
        }
    }
}

// ---------------------------------------------------------------------
// Shared parse forests (SPPF) from the chart
// ---------------------------------------------------------------------

impl EarleyParser {
    /// The derivation facts the completed chart proves: every completed
    /// item `(p, origin) ∈ set[to]` is exactly the statement "production
    /// `p` derives `tokens[origin..to)`" — the input of the shared SPPF
    /// builder.
    pub fn production_spans(&self, chart: &EarleyChart) -> ProductionSpans {
        let mut spans = ProductionSpans::new();
        for (to, set) in chart.seen.iter().enumerate() {
            for item in set {
                let p = &self.cfg.productions()[item.prod as usize];
                if item.dot as usize == p.rhs.len() {
                    spans.insert(item.prod as usize, item.origin as usize, to);
                }
            }
        }
        spans
    }

    /// Builds the full shared parse forest of a fed chart: *all*
    /// derivations, packed per `(nonterminal, span)` with ambiguity nodes —
    /// cubic-sized where the tree set is exponential (or infinite). The
    /// lexeme text of token `i` is `texts[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `texts.len() != tokens.len()`.
    pub fn forest_from_chart(
        &self,
        chart: &EarleyChart,
        tokens: &[u32],
        texts: &[&str],
    ) -> ParseForest {
        let spans = self.production_spans(chart);
        build_sppf(&self.cfg, tokens, texts, &spans)
    }

    /// Parses `tokens` and returns the shared forest of **all** its
    /// derivations (the canonical empty forest for a rejected input).
    /// Lexeme texts default to the terminal kind names.
    pub fn parse_forest(&self, tokens: &[u32]) -> ParseForest {
        let mut chart = self.begin();
        for &t in tokens {
            self.feed(&mut chart, t);
        }
        let texts: Vec<&str> = tokens.iter().map(|&t| self.cfg.terminal_name(t)).collect();
        self.forest_from_chart(&chart, tokens, &texts)
    }

    /// Extracts **one** derivation tree for an accepted input (any
    /// derivation if ambiguous) — a shim over [`parse_forest`]
    /// (EarleyParser::parse_forest) now that the chart builds full
    /// forests. Returns `None` if the input is not in the language.
    pub fn parse_tree(&self, tokens: &[u32]) -> Option<Tree> {
        let forest = self.parse_forest(tokens);
        // Deep enough for any minimal derivation (each derivation step
        // spends a handful of forest levels; unit chains are bounded by
        // the nonterminal count), yet bounded so cyclic forests terminate.
        let depth = 4 * (tokens.len() + 2) * (self.cfg.nonterminal_count() + 3) + 256;
        forest.trees(EnumLimits { max_trees: 1, max_depth: depth }).pop()
    }
}

#[cfg(test)]
mod tree_tests {
    use super::*;
    use pwd_forest::TreeCount;

    #[test]
    fn extracts_arithmetic_tree() {
        let cfg = pwd_grammar::grammars::arith::cfg();
        let p = EarleyParser::new(&cfg);
        let toks = p.kinds_to_tokens(&["NUM", "+", "NUM", "*", "NUM"]).unwrap();
        let tree = p.parse_tree(&toks).expect("accepted");
        assert_eq!(tree.leaves(), 5);
        // Precedence: the multiplication nests under the right T.
        assert_eq!(tree.to_string(), "(E (E (T (F NUM))) + (T (T (F NUM)) * (F NUM)))");
    }

    #[test]
    fn extracts_tree_with_epsilon() {
        let mut g = pwd_grammar::CfgBuilder::new("S");
        g.terminals(&["a", "b"]);
        g.rule("S", &["A", "b"]);
        g.rule("A", &[]);
        g.rule("A", &["a"]);
        let cfg = g.build().unwrap();
        let p = EarleyParser::new(&cfg);
        let toks = p.kinds_to_tokens(&["b"]).unwrap();
        let tree = p.parse_tree(&toks).expect("accepted");
        assert_eq!(tree.to_string(), "(S (A) b)");
    }

    #[test]
    fn left_recursive_tree() {
        let mut g = pwd_grammar::CfgBuilder::new("L");
        g.terminal("c");
        g.rule("L", &["L", "c"]);
        g.rule("L", &["c"]);
        let cfg = g.build().unwrap();
        let p = EarleyParser::new(&cfg);
        let toks = p.kinds_to_tokens(&["c", "c", "c"]).unwrap();
        let tree = p.parse_tree(&toks).expect("accepted");
        assert_eq!(tree.to_string(), "(L (L (L c) c) c)");
    }

    #[test]
    fn rejected_input_has_no_tree() {
        let cfg = pwd_grammar::grammars::arith::cfg();
        let p = EarleyParser::new(&cfg);
        let toks = p.kinds_to_tokens(&["NUM", "+"]).unwrap();
        assert!(p.parse_tree(&toks).is_none());
        assert!(!p.parse_forest(&toks).has_tree());
    }

    #[test]
    fn ambiguous_grammar_builds_exact_forest() {
        let cfg = pwd_grammar::grammars::ambiguous::catalan();
        let p = EarleyParser::new(&cfg);
        let catalan: [u128; 8] = [1, 1, 2, 5, 14, 42, 132, 429];
        for n in 1..=8usize {
            let toks = vec![0u32; n];
            let forest = p.parse_forest(&toks);
            assert_eq!(forest.count(), TreeCount::Finite(catalan[n - 1]), "n={n}");
        }
        let tree = p.parse_tree(&[0u32; 3]).expect("accepted");
        assert_eq!(tree.leaves(), 3);
    }

    #[test]
    fn python_statement_tree() {
        let cfg = pwd_grammar::grammars::python::cfg();
        let p = EarleyParser::new(&cfg);
        let lexemes = pwd_lex::tokenize_python("x = 1\n").unwrap();
        let toks: Vec<u32> = lexemes.iter().map(|l| cfg.terminal_index(&l.kind).unwrap()).collect();
        let tree = p.parse_tree(&toks).expect("accepted");
        assert_eq!(tree.leaves(), toks.len());
        assert!(tree.to_string().starts_with("(file_input"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwd_grammar::CfgBuilder;

    fn arith() -> EarleyParser {
        EarleyParser::new(&pwd_grammar::grammars::arith::cfg())
    }

    #[test]
    fn arithmetic() {
        let p = arith();
        assert!(p.recognize_kinds(&["NUM", "+", "NUM", "*", "NUM"]).unwrap());
        assert!(p.recognize_kinds(&["(", "NUM", ")", "*", "NUM"]).unwrap());
        assert!(!p.recognize_kinds(&["NUM", "+"]).unwrap());
        assert!(!p.recognize_kinds(&["+", "NUM"]).unwrap());
        assert!(!p.recognize_kinds(&[]).unwrap());
    }

    #[test]
    fn left_and_right_recursion() {
        let mut g = CfgBuilder::new("L");
        g.terminal("c");
        g.rule("L", &["L", "c"]);
        g.rule("L", &["c"]);
        let left = EarleyParser::new(&g.build().unwrap());
        assert!(left.recognize_kinds(&["c", "c", "c"]).unwrap());

        let mut g = CfgBuilder::new("R");
        g.terminal("c");
        g.rule("R", &["c", "R"]);
        g.rule("R", &["c"]);
        let right = EarleyParser::new(&g.build().unwrap());
        assert!(right.recognize_kinds(&["c", "c", "c"]).unwrap());
        assert!(!right.recognize_kinds(&[]).unwrap());
    }

    #[test]
    fn nullable_rules() {
        // S → A B, A → ε | 'a', B → 'b'.
        let mut g = CfgBuilder::new("S");
        g.terminals(&["a", "b"]);
        g.rule("S", &["A", "B"]);
        g.rule("A", &[]);
        g.rule("A", &["a"]);
        g.rule("B", &["b"]);
        let p = EarleyParser::new(&g.build().unwrap());
        assert!(p.recognize_kinds(&["b"]).unwrap());
        assert!(p.recognize_kinds(&["a", "b"]).unwrap());
        assert!(!p.recognize_kinds(&["a"]).unwrap());
    }

    #[test]
    fn deeply_nullable_chain() {
        // S → A A A, A → ε | 'a' — stresses the nullable fix.
        let mut g = CfgBuilder::new("S");
        g.terminal("a");
        g.rule("S", &["A", "A", "A"]);
        g.rule("A", &[]);
        g.rule("A", &["a"]);
        let p = EarleyParser::new(&g.build().unwrap());
        for n in 0..=3 {
            let kinds: Vec<&str> = std::iter::repeat_n("a", n).collect();
            assert!(p.recognize_kinds(&kinds).unwrap(), "n={n}");
        }
        assert!(!p.recognize_kinds(&["a", "a", "a", "a"]).unwrap());
    }

    #[test]
    fn hidden_left_recursion() {
        // S → A S 'b' | 'b', A → ε — hidden left recursion via nullable A.
        let mut g = CfgBuilder::new("S");
        g.terminal("b");
        g.rule("S", &["A", "S", "b"]);
        g.rule("S", &["b"]);
        g.rule("A", &[]);
        let p = EarleyParser::new(&g.build().unwrap());
        for n in 1..=6 {
            let kinds: Vec<&str> = std::iter::repeat_n("b", n).collect();
            assert!(p.recognize_kinds(&kinds).unwrap(), "n={n}");
        }
        assert!(!p.recognize_kinds(&[]).unwrap());
    }

    #[test]
    fn ambiguous_grammar() {
        let p = EarleyParser::new(&pwd_grammar::grammars::ambiguous::catalan());
        for n in 1..8 {
            let kinds: Vec<&str> = std::iter::repeat_n("a", n).collect();
            assert!(p.recognize_kinds(&kinds).unwrap(), "n={n}");
        }
        assert!(!p.recognize_kinds(&[]).unwrap());
    }

    #[test]
    fn python_module() {
        let p = EarleyParser::new(&pwd_grammar::grammars::python::cfg());
        let src = "def f(x):\n    return x + 1\n\ny = f(41)\n";
        let lexemes = pwd_lex::tokenize_python(src).unwrap();
        assert!(p.recognize_lexemes(&lexemes).unwrap());
        let bad = pwd_lex::tokenize_python("def f(:\n    pass\n").unwrap();
        assert!(!p.recognize_lexemes(&bad).unwrap());
    }

    #[test]
    fn unknown_kind_error() {
        let p = arith();
        let err = p.recognize_kinds(&["NUM", "WAT"]).unwrap_err();
        assert_eq!(err.kind, "WAT");
        assert_eq!(err.position, 1);
    }

    #[test]
    fn stats_report_chart_sizes() {
        let p = arith();
        let toks = p.kinds_to_tokens(&["NUM", "+", "NUM"]).unwrap();
        let (ok, stats) = p.recognize_with_stats(&toks);
        assert!(ok);
        assert_eq!(stats.set_sizes.len(), 4);
        assert!(stats.total_items > 0);
    }

    #[test]
    fn incremental_feed_matches_batch() {
        let p = arith();
        for kinds in [
            vec!["NUM", "+", "NUM", "*", "NUM"],
            vec!["NUM", "+"],
            vec!["(", "NUM", ")"],
            vec![],
            vec!["+", "NUM"],
        ] {
            let toks = p.kinds_to_tokens(&kinds).unwrap();
            let batch = p.recognize(&toks);
            let mut chart = p.begin();
            for &t in &toks {
                p.feed(&mut chart, t);
            }
            assert_eq!(p.accepted(&chart), batch, "{kinds:?}");
            assert_eq!(chart.tokens_fed(), toks.len());
        }
    }

    #[test]
    fn dead_chart_stays_dead_and_reports_it() {
        let p = arith();
        let toks = p.kinds_to_tokens(&["NUM", ")", "NUM"]).unwrap();
        let mut chart = p.begin();
        assert!(p.feed(&mut chart, toks[0]));
        assert!(!p.feed(&mut chart, toks[1]), "NUM ) is a dead prefix");
        assert!(chart.is_dead());
        assert!(!p.feed(&mut chart, toks[2]));
        assert!(!p.accepted(&chart));
    }

    #[test]
    fn checkpoint_rollback_truncates_to_prefix() {
        let p = arith();
        let toks = p.kinds_to_tokens(&["NUM", "+", "NUM", "*", "NUM"]).unwrap();
        let mut chart = p.begin();
        p.feed(&mut chart, toks[0]);
        assert!(p.accepted(&chart), "NUM alone is a sentence");
        let cp = chart.checkpoint();
        assert_eq!(cp.tokens_fed(), 1);
        // Speculate: NUM + NUM, then a dead continuation.
        p.feed(&mut chart, toks[1]);
        p.feed(&mut chart, toks[1]); // NUM + + → dead
        assert!(chart.is_dead());
        chart.rollback(&cp);
        assert_eq!(chart.tokens_fed(), 1);
        assert!(p.accepted(&chart));
        // The restored prefix continues exactly like a fresh parse.
        for &t in &toks[1..] {
            assert!(p.feed(&mut chart, t));
        }
        assert!(p.accepted(&chart));
        assert_eq!(chart.stats().set_sizes.len(), toks.len() + 1);
    }

    #[test]
    fn expected_terminals_predict_viable_feeds() {
        let p = arith();
        let toks = p.kinds_to_tokens(&["NUM", "+"]).unwrap();
        let mut chart = p.begin();
        for &t in &toks {
            p.feed(&mut chart, t);
        }
        let expected = p.expected_terminals(&chart);
        assert!(!expected.is_empty());
        for t in 0..p.cfg().terminal_count() as u32 {
            let mut probe = chart.clone();
            assert_eq!(
                p.feed(&mut probe, t),
                expected.contains(&t),
                "terminal {} ({})",
                t,
                p.cfg().terminal_name(t)
            );
        }
        // A dead frontier expects nothing.
        let bad = p.kinds_to_tokens(&[")"]).unwrap();
        let mut dead = p.begin();
        p.feed(&mut dead, bad[0]);
        assert!(dead.is_dead());
        assert!(p.expected_terminals(&dead).is_empty());
    }

    #[test]
    fn incremental_acceptance_tracks_every_prefix() {
        // Matched against the batch recognizer at every prefix length.
        let p = arith();
        let toks = p.kinds_to_tokens(&["NUM", "*", "(", "NUM", "+", "NUM", ")"]).unwrap();
        let mut chart = p.begin();
        assert_eq!(p.accepted(&chart), p.recognize(&[]));
        for (i, &t) in toks.iter().enumerate() {
            p.feed(&mut chart, t);
            assert_eq!(p.accepted(&chart), p.recognize(&toks[..=i]), "prefix {}", i + 1);
        }
    }
}
