//! Grammar transformations and hygiene: productivity, useless-symbol
//! elimination, and grammar metrics.
//!
//! The paper's CFG→expression conversion (§2.5.1) assumes a sane grammar;
//! these passes provide the hygiene a production front end needs, and the
//! metrics feed the benchmark reports (the paper quotes its Python grammar
//! at 722 productions after conversion).

use crate::analysis::reachable_nonterminals;
use crate::cfg::{Cfg, CfgBuilder, CfgError, Symbol};

/// Per-nonterminal: can it derive at least one terminal string?
pub fn productive_nonterminals(cfg: &Cfg) -> Vec<bool> {
    let mut productive = vec![false; cfg.nonterminal_count()];
    let mut changed = true;
    while changed {
        changed = false;
        for p in cfg.productions() {
            if productive[p.lhs as usize] {
                continue;
            }
            let all = p.rhs.iter().all(|s| match s {
                Symbol::T(_) => true,
                Symbol::N(n) => productive[*n as usize],
            });
            if all {
                productive[p.lhs as usize] = true;
                changed = true;
            }
        }
    }
    productive
}

/// Errors from grammar transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The start symbol itself is useless; the language is empty.
    EmptyLanguage,
    /// Rebuilding the grammar failed (should not happen for valid inputs).
    Rebuild(CfgError),
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformError::EmptyLanguage => {
                write!(f, "the start symbol derives no terminal string; the language is empty")
            }
            TransformError::Rebuild(e) => write!(f, "rebuilding transformed grammar: {e}"),
        }
    }
}

impl std::error::Error for TransformError {}

/// Removes useless symbols: first unproductive nonterminals, then
/// unreachable ones (the standard order — reachability must be computed on
/// the productive core).
///
/// # Errors
///
/// [`TransformError::EmptyLanguage`] if the start symbol is unproductive.
///
/// # Examples
///
/// ```
/// use pwd_grammar::{CfgBuilder, remove_useless};
/// let mut g = CfgBuilder::new("S");
/// g.terminal("a");
/// g.rule("S", &["a"]);
/// g.rule("S", &["Loop"]);       // unproductive: Loop → Loop
/// g.rule("Loop", &["Loop"]);
/// g.rule("Dead", &["a"]);       // unreachable
/// let cleaned = remove_useless(&g.build().unwrap()).unwrap();
/// assert_eq!(cleaned.production_count(), 1);
/// ```
pub fn remove_useless(cfg: &Cfg) -> Result<Cfg, TransformError> {
    let productive = productive_nonterminals(cfg);
    if !productive[cfg.start() as usize] {
        return Err(TransformError::EmptyLanguage);
    }
    // Build the productive core.
    let core = rebuild(cfg, |p| {
        productive[p.lhs as usize]
            && p.rhs.iter().all(|s| match s {
                Symbol::T(_) => true,
                Symbol::N(n) => productive[*n as usize],
            })
    })?;
    // Then drop unreachable nonterminals.
    let reach = reachable_nonterminals(&core);
    rebuild(&core, |p| reach[p.lhs as usize])
}

/// Rebuilds a grammar keeping only productions passing `keep`.
fn rebuild(
    cfg: &Cfg,
    keep: impl Fn(&crate::cfg::Production) -> bool,
) -> Result<Cfg, TransformError> {
    let start_name = cfg.nonterminal_name(cfg.start()).to_string();
    let mut b = CfgBuilder::new(&start_name);
    for t in 0..cfg.terminal_count() {
        b.terminal(cfg.terminal_name(t as u32));
    }
    for p in cfg.productions() {
        if !keep(p) {
            continue;
        }
        let lhs = cfg.nonterminal_name(p.lhs).to_string();
        let rhs: Vec<String> = p
            .rhs
            .iter()
            .map(|s| match s {
                Symbol::T(t) => cfg.terminal_name(*t).to_string(),
                Symbol::N(n) => cfg.nonterminal_name(*n).to_string(),
            })
            .collect();
        let refs: Vec<&str> = rhs.iter().map(String::as_str).collect();
        b.rule(&lhs, &refs);
    }
    b.build().map_err(TransformError::Rebuild)
}

/// Structural metrics of a grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct GrammarMetrics {
    /// Number of productions.
    pub productions: usize,
    /// Number of nonterminals.
    pub nonterminals: usize,
    /// Number of terminals.
    pub terminals: usize,
    /// ε-productions.
    pub epsilon_productions: usize,
    /// Unit productions (`A → B`).
    pub unit_productions: usize,
    /// Directly left-recursive productions (`A → A …`).
    pub left_recursive_productions: usize,
    /// Longest right-hand side.
    pub max_rhs_len: usize,
    /// Total symbols across all right-hand sides (the grammar size `G`
    /// that the paper's bounds are stated over, up to a constant).
    pub total_symbols: usize,
}

/// Computes [`GrammarMetrics`].
pub fn metrics(cfg: &Cfg) -> GrammarMetrics {
    let mut m = GrammarMetrics {
        productions: cfg.production_count(),
        nonterminals: cfg.nonterminal_count(),
        terminals: cfg.terminal_count(),
        epsilon_productions: 0,
        unit_productions: 0,
        left_recursive_productions: 0,
        max_rhs_len: 0,
        total_symbols: 0,
    };
    for p in cfg.productions() {
        if p.rhs.is_empty() {
            m.epsilon_productions += 1;
        }
        if let [Symbol::N(_)] = p.rhs.as_slice() {
            m.unit_productions += 1;
        }
        if p.rhs.first() == Some(&Symbol::N(p.lhs)) {
            m.left_recursive_productions += 1;
        }
        m.max_rhs_len = m.max_rhs_len.max(p.rhs.len());
        m.total_symbols += p.rhs.len();
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammars;

    #[test]
    fn productive_detects_loops() {
        let mut g = CfgBuilder::new("S");
        g.terminal("a");
        g.rule("S", &["a"]);
        g.rule("Loop", &["Loop"]);
        let cfg = g.build().unwrap();
        let p = productive_nonterminals(&cfg);
        assert!(p[cfg.nonterminal_index("S").unwrap() as usize]);
        assert!(!p[cfg.nonterminal_index("Loop").unwrap() as usize]);
    }

    #[test]
    fn empty_language_is_an_error() {
        let mut g = CfgBuilder::new("S");
        g.terminal("a");
        g.rule("S", &["S", "a"]); // no base case
        assert!(matches!(remove_useless(&g.build().unwrap()), Err(TransformError::EmptyLanguage)));
    }

    #[test]
    fn corpus_grammars_are_already_clean() {
        for cfg in [
            grammars::arith::cfg(),
            grammars::json::cfg(),
            grammars::ambiguous::catalan(),
            grammars::python::cfg(),
        ] {
            let cleaned = remove_useless(&cfg).unwrap();
            assert_eq!(
                cleaned.production_count(),
                cfg.production_count(),
                "corpus grammar has useless symbols"
            );
        }
    }

    #[test]
    fn removal_preserves_language_on_samples() {
        let mut g = CfgBuilder::new("S");
        g.terminals(&["a", "b"]);
        g.rule("S", &["a", "S", "b"]);
        g.rule("S", &[]);
        g.rule("S", &["Junk"]);
        g.rule("Junk", &["Junk", "a"]);
        let cfg = g.build().unwrap();
        let cleaned = remove_useless(&cfg).unwrap();
        let before = pwd_earley_like(&cfg);
        let after = pwd_earley_like(&cleaned);
        for input in [&[][..], &["a", "b"][..], &["a", "a", "b", "b"][..], &["a"][..]] {
            assert_eq!(before(input), after(input), "{input:?}");
        }
    }

    /// Membership via the PWD engine (avoids a dev-dependency cycle on
    /// pwd-earley).
    fn pwd_earley_like(cfg: &Cfg) -> impl Fn(&[&str]) -> bool {
        let cfg = cfg.clone();
        move |kinds: &[&str]| {
            let mut c = crate::compile::Compiled::compile(&cfg, pwd_core::ParserConfig::improved());
            let toks: Vec<_> = kinds.iter().map(|k| c.token(k, k).unwrap()).collect();
            c.lang.recognize(c.start, &toks).unwrap()
        }
    }

    #[test]
    fn metrics_of_python_grammar() {
        let m = metrics(&grammars::python::cfg());
        assert!(m.productions >= 150);
        assert!(m.left_recursive_productions >= 15, "{m:?}");
        assert!(m.epsilon_productions >= 2);
        assert!(m.max_rhs_len >= 6);
        assert!(m.total_symbols > 400);
    }
}
