//! Context-free grammars, their compilation into PWD expression graphs, the
//! benchmark grammar corpus, and workload generators.
//!
//! Part of the `derp` reproduction of *On the Complexity and Performance of
//! Parsing with Derivatives* (PLDI 2016). The paper converts traditional
//! CFG productions to nested parsing expressions (§2.5.1) and evaluates on a
//! 722-production Python grammar over the Python Standard Library; this
//! crate provides the CFG machinery, a Python-subset grammar, and synthetic
//! corpus generators standing in for those artifacts (see DESIGN.md for the
//! substitution rationale).
//!
//! # Quick start
//!
//! ```
//! use pwd_grammar::{grammars, gen, Compiled};
//! use pwd_core::ParserConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Parse generated Python-like source end to end.
//! let src = gen::python_source(120, 42);
//! let lexemes = pwd_lex::tokenize_python(&src)?;
//! let mut parser = Compiled::compile(&grammars::python::cfg(), ParserConfig::improved());
//! assert!(parser.recognize_lexemes(&lexemes)?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod cfg;
mod compile;
pub mod gen;
pub mod grammars;
mod normalize;
mod random;
pub mod sppf;
mod transform;

pub use cfg::{Cfg, CfgBuilder, CfgError, Production, Symbol};
pub use compile::{Compiled, UnknownTerminal};
pub use normalize::{eliminate_epsilon, eliminate_units};
pub use random::{random_cfg, random_input, RandomCfgConfig};
pub use sppf::{build_sppf, ProductionSpans};
pub use transform::{
    metrics, productive_nonterminals, remove_useless, GrammarMetrics, TransformError,
};
