//! Context-free grammar representation.
//!
//! The paper converts traditional CFG productions into nested parsing
//! expressions (§2.5.1); this module is the "traditional CFG" side of that
//! conversion, shared by the PWD compiler ([`crate::compile`]) and the
//! Earley/GLR baselines (which, like Bison and `parser-tools/cfg-parser`,
//! consume plain productions).

use std::collections::HashMap;
use std::fmt;

/// A grammar symbol: terminal or nonterminal, by index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Symbol {
    /// Terminal index (into [`Cfg::terminal_name`]).
    T(u32),
    /// Nonterminal index (into [`Cfg::nonterminal_name`]).
    N(u32),
}

/// A production `lhs → rhs₀ rhs₁ …` (empty `rhs` = ε-production).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Production {
    /// Nonterminal index of the left-hand side.
    pub lhs: u32,
    /// Right-hand side symbols, possibly empty.
    pub rhs: Vec<Symbol>,
}

/// An immutable context-free grammar.
///
/// Build with [`CfgBuilder`].
#[derive(Debug, Clone)]
pub struct Cfg {
    terminals: Vec<String>,
    nonterminals: Vec<String>,
    productions: Vec<Production>,
    by_lhs: Vec<Vec<usize>>,
    start: u32,
}

/// Errors from grammar construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfgError {
    /// A nonterminal is used but has no productions.
    MissingProductions {
        /// Name of the production-less nonterminal.
        nonterminal: String,
    },
    /// The declared start symbol has no productions.
    UndefinedStart {
        /// The start symbol's name.
        start: String,
    },
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::MissingProductions { nonterminal } => {
                write!(f, "nonterminal {nonterminal:?} has no productions")
            }
            CfgError::UndefinedStart { start } => {
                write!(f, "start symbol {start:?} has no productions")
            }
        }
    }
}

impl std::error::Error for CfgError {}

impl Cfg {
    /// The start nonterminal's index.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Number of terminals.
    pub fn terminal_count(&self) -> usize {
        self.terminals.len()
    }

    /// Number of nonterminals.
    pub fn nonterminal_count(&self) -> usize {
        self.nonterminals.len()
    }

    /// Number of productions (the paper reports 722 for its Python CFG).
    pub fn production_count(&self) -> usize {
        self.productions.len()
    }

    /// Display name of a terminal.
    pub fn terminal_name(&self, t: u32) -> &str {
        &self.terminals[t as usize]
    }

    /// Display name of a nonterminal.
    pub fn nonterminal_name(&self, n: u32) -> &str {
        &self.nonterminals[n as usize]
    }

    /// Index of a terminal by name.
    pub fn terminal_index(&self, name: &str) -> Option<u32> {
        self.terminals.iter().position(|t| t == name).map(|i| i as u32)
    }

    /// Index of a nonterminal by name.
    pub fn nonterminal_index(&self, name: &str) -> Option<u32> {
        self.nonterminals.iter().position(|t| t == name).map(|i| i as u32)
    }

    /// All productions.
    pub fn productions(&self) -> &[Production] {
        &self.productions
    }

    /// Indices of the productions with the given left-hand side.
    pub fn productions_of(&self, nt: u32) -> &[usize] {
        &self.by_lhs[nt as usize]
    }

    /// A stable 64-bit fingerprint of this grammar, for keying compiled
    /// caches (`pwd-serve` shards its compiled-grammar cache on it).
    ///
    /// Two properties make it a *semantic* key rather than a source hash:
    ///
    /// * **Order-independent over productions** — per-production hashes are
    ///   combined with a commutative sum, so listing alternatives in a
    ///   different order yields the same fingerprint (duplicate productions
    ///   still count by multiplicity).
    /// * **Nonterminal-renaming-invariant** — nonterminals enter the hash by
    ///   index, not name, so `S → S S | a` and `Expr → Expr Expr | a`
    ///   collide by design. Terminals enter by *name*: they are the
    ///   grammar's external alphabet, and tokens are matched by kind string.
    ///
    /// The hash is a fixed FNV-1a (not `DefaultHasher`), so values are
    /// stable across processes, platforms, and Rust releases — safe to log
    /// in bench trajectories and compare between runs.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
            const PRIME: u64 = 0x0000_0100_0000_01b3;
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
            h
        }
        fn fnv_u64(h: u64, v: u64) -> u64 {
            fnv_bytes(h, &v.to_le_bytes())
        }

        let mut productions_acc: u64 = 0;
        for p in &self.productions {
            let mut h = fnv_u64(OFFSET, u64::from(p.lhs));
            for sym in &p.rhs {
                h = match sym {
                    // Tag bytes keep T(i) and N(i) distinct even when a
                    // terminal name hash and an index coincide.
                    Symbol::T(t) => fnv_bytes(fnv_u64(h, 1), self.terminal_name(*t).as_bytes()),
                    Symbol::N(n) => fnv_u64(fnv_u64(h, 2), u64::from(*n)),
                };
            }
            // One extra round decorrelates the sum from rhs prefixes.
            productions_acc = productions_acc.wrapping_add(fnv_u64(h, 0x9e37_79b9_7f4a_7c15));
        }

        // Terminal names also commute: declaration order is a builder detail,
        // not part of the language.
        let mut terminals_acc: u64 = 0;
        for t in &self.terminals {
            terminals_acc = terminals_acc.wrapping_add(fnv_bytes(OFFSET, t.as_bytes()));
        }

        let mut h = fnv_u64(OFFSET, u64::from(self.start));
        h = fnv_u64(h, self.nonterminals.len() as u64);
        h = fnv_u64(h, terminals_acc);
        fnv_u64(h, productions_acc)
    }

    /// Renders a production like `E → E "+" T`.
    pub fn render_production(&self, p: &Production) -> String {
        let mut s = format!("{} →", self.nonterminal_name(p.lhs));
        if p.rhs.is_empty() {
            s.push_str(" ε");
        }
        for sym in &p.rhs {
            match sym {
                Symbol::T(t) => s.push_str(&format!(" {:?}", self.terminal_name(*t))),
                Symbol::N(n) => s.push_str(&format!(" {}", self.nonterminal_name(*n))),
            }
        }
        s
    }
}

impl fmt::Display for Cfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "CFG: start {}, {} nonterminals, {} terminals, {} productions",
            self.nonterminal_name(self.start),
            self.nonterminals.len(),
            self.terminals.len(),
            self.productions.len()
        )?;
        for p in &self.productions {
            writeln!(f, "  {}", self.render_production(p))?;
        }
        Ok(())
    }
}

/// Builder for [`Cfg`]. Terminals must be declared before use; any symbol in
/// a rule body that is not a declared terminal becomes a nonterminal.
///
/// # Examples
///
/// ```
/// use pwd_grammar::CfgBuilder;
///
/// # fn main() -> Result<(), pwd_grammar::CfgError> {
/// let mut g = CfgBuilder::new("E");
/// g.terminals(&["+", "NUM"]);
/// g.rule("E", &["E", "+", "T"]);
/// g.rule("E", &["T"]);
/// g.rule("T", &["NUM"]);
/// let cfg = g.build()?;
/// assert_eq!(cfg.production_count(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CfgBuilder {
    start: String,
    terminals: Vec<String>,
    tmap: HashMap<String, u32>,
    nonterminals: Vec<String>,
    nmap: HashMap<String, u32>,
    productions: Vec<Production>,
}

impl CfgBuilder {
    /// Creates a builder with the given start nonterminal.
    pub fn new(start: &str) -> CfgBuilder {
        CfgBuilder {
            start: start.to_string(),
            terminals: Vec::new(),
            tmap: HashMap::new(),
            nonterminals: Vec::new(),
            nmap: HashMap::new(),
            productions: Vec::new(),
        }
    }

    /// Declares one terminal.
    pub fn terminal(&mut self, name: &str) -> &mut Self {
        if !self.tmap.contains_key(name) {
            let id = self.terminals.len() as u32;
            self.terminals.push(name.to_string());
            self.tmap.insert(name.to_string(), id);
        }
        self
    }

    /// Declares several terminals.
    pub fn terminals(&mut self, names: &[&str]) -> &mut Self {
        for n in names {
            self.terminal(n);
        }
        self
    }

    fn nonterminal(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.nmap.get(name) {
            return id;
        }
        let id = self.nonterminals.len() as u32;
        self.nonterminals.push(name.to_string());
        self.nmap.insert(name.to_string(), id);
        id
    }

    /// Adds a production. Symbols naming declared terminals are terminals;
    /// everything else is a nonterminal.
    ///
    /// # Panics
    ///
    /// Panics if `lhs` was declared as a terminal.
    pub fn rule(&mut self, lhs: &str, rhs: &[&str]) -> &mut Self {
        assert!(!self.tmap.contains_key(lhs), "rule head {lhs:?} was declared as a terminal");
        let lhs = self.nonterminal(lhs);
        let rhs = rhs
            .iter()
            .map(|s| match self.tmap.get(*s) {
                Some(&t) => Symbol::T(t),
                None => Symbol::N(self.nonterminal(s)),
            })
            .collect();
        self.productions.push(Production { lhs, rhs });
        self
    }

    /// Adds several productions for one nonterminal (one per alternative).
    pub fn rules(&mut self, lhs: &str, alternatives: &[&[&str]]) -> &mut Self {
        for alt in alternatives {
            self.rule(lhs, alt);
        }
        self
    }

    /// Finalizes the grammar.
    ///
    /// # Errors
    ///
    /// [`CfgError::UndefinedStart`] if the start symbol has no productions;
    /// [`CfgError::MissingProductions`] if any referenced nonterminal has no
    /// productions.
    pub fn build(self) -> Result<Cfg, CfgError> {
        let Some(&start) = self.nmap.get(&self.start) else {
            return Err(CfgError::UndefinedStart { start: self.start });
        };
        let mut by_lhs: Vec<Vec<usize>> = vec![Vec::new(); self.nonterminals.len()];
        for (i, p) in self.productions.iter().enumerate() {
            by_lhs[p.lhs as usize].push(i);
        }
        for (i, prods) in by_lhs.iter().enumerate() {
            if prods.is_empty() {
                return Err(CfgError::MissingProductions {
                    nonterminal: self.nonterminals[i].clone(),
                });
            }
        }
        Ok(Cfg {
            terminals: self.terminals,
            nonterminals: self.nonterminals,
            productions: self.productions,
            by_lhs,
            start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arith() -> Cfg {
        let mut g = CfgBuilder::new("E");
        g.terminals(&["+", "*", "(", ")", "NUM"]);
        g.rule("E", &["E", "+", "T"]);
        g.rule("E", &["T"]);
        g.rule("T", &["T", "*", "F"]);
        g.rule("T", &["F"]);
        g.rule("F", &["(", "E", ")"]);
        g.rule("F", &["NUM"]);
        g.build().unwrap()
    }

    #[test]
    fn builds_and_indexes() {
        let g = arith();
        assert_eq!(g.production_count(), 6);
        assert_eq!(g.nonterminal_count(), 3);
        assert_eq!(g.terminal_count(), 5);
        assert_eq!(g.nonterminal_name(g.start()), "E");
        assert_eq!(g.terminal_index("NUM"), Some(4));
        assert_eq!(g.productions_of(g.start()).len(), 2);
    }

    #[test]
    fn epsilon_productions_allowed() {
        let mut g = CfgBuilder::new("S");
        g.terminal("a");
        g.rule("S", &[]);
        g.rule("S", &["a", "S"]);
        let g = g.build().unwrap();
        assert!(g.productions()[0].rhs.is_empty());
    }

    #[test]
    fn missing_productions_error() {
        let mut g = CfgBuilder::new("S");
        g.terminal("a");
        g.rule("S", &["Undefined", "a"]);
        match g.build() {
            Err(CfgError::MissingProductions { nonterminal }) => {
                assert_eq!(nonterminal, "Undefined");
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn undefined_start_error() {
        let g = CfgBuilder::new("S");
        assert!(matches!(g.build(), Err(CfgError::UndefinedStart { .. })));
    }

    #[test]
    #[should_panic(expected = "declared as a terminal")]
    fn terminal_as_lhs_panics() {
        let mut g = CfgBuilder::new("S");
        g.terminal("a");
        g.rule("a", &[]);
    }

    #[test]
    fn rules_helper() {
        let mut g = CfgBuilder::new("S");
        g.terminal("a");
        g.rules("S", &[&["a"], &["S", "S"]]);
        let g = g.build().unwrap();
        assert_eq!(g.production_count(), 2);
    }

    #[test]
    fn fingerprint_is_invariant_under_nonterminal_renaming() {
        let mut g1 = CfgBuilder::new("S");
        g1.terminal("a");
        g1.rule("S", &["S", "S"]);
        g1.rule("S", &["a"]);
        let mut g2 = CfgBuilder::new("Expr");
        g2.terminal("a");
        g2.rule("Expr", &["Expr", "Expr"]);
        g2.rule("Expr", &["a"]);
        assert_eq!(
            g1.build().unwrap().fingerprint(),
            g2.build().unwrap().fingerprint(),
            "renaming every nonterminal must not change the fingerprint"
        );
    }

    #[test]
    fn fingerprint_is_order_independent_over_productions() {
        let mut g1 = CfgBuilder::new("E");
        g1.terminals(&["+", "NUM"]);
        g1.rule("E", &["E", "+", "E"]);
        g1.rule("E", &["NUM"]);
        let mut g2 = CfgBuilder::new("E");
        g2.terminals(&["+", "NUM"]);
        g2.rule("E", &["NUM"]);
        g2.rule("E", &["E", "+", "E"]);
        assert_eq!(g1.build().unwrap().fingerprint(), g2.build().unwrap().fingerprint());
    }

    #[test]
    fn fingerprint_separates_distinct_grammars() {
        let base = |extra: bool, term: &str, start: &str| {
            let mut g = CfgBuilder::new(start);
            g.terminals(&[term, "x"]);
            g.rule("S", &["x", "S"]);
            g.rule("S", &[term]);
            g.rule("T", &["x"]);
            g.rule("S", &["T"]);
            if extra {
                g.rule("S", &["x", "x"]);
            }
            g.build().unwrap().fingerprint()
        };
        let reference = base(false, "a", "S");
        assert_ne!(reference, base(true, "a", "S"), "extra production");
        assert_ne!(reference, base(false, "b", "S"), "renamed *terminal* is a new alphabet");
        assert_ne!(reference, base(false, "a", "T"), "different start symbol");

        // Duplicate productions count by multiplicity.
        let mut g1 = CfgBuilder::new("S");
        g1.terminal("a");
        g1.rule("S", &["a"]);
        let mut g2 = CfgBuilder::new("S");
        g2.terminal("a");
        g2.rule("S", &["a"]);
        g2.rule("S", &["a"]);
        assert_ne!(g1.build().unwrap().fingerprint(), g2.build().unwrap().fingerprint());
    }

    #[test]
    fn fingerprint_is_stable_across_runs() {
        // Pinned value: the fingerprint is part of the serving/bench
        // trajectory format, so accidental algorithm changes should be loud.
        let mut g = CfgBuilder::new("S");
        g.terminal("a");
        g.rule("S", &["S", "S"]);
        g.rule("S", &["a"]);
        let fp = g.build().unwrap().fingerprint();
        assert_eq!(fp, g2_expected(), "fingerprint algorithm changed");
        fn g2_expected() -> u64 {
            let mut g = CfgBuilder::new("Anything");
            g.terminal("a");
            g.rule("Anything", &["Anything", "Anything"]);
            g.rule("Anything", &["a"]);
            g.build().unwrap().fingerprint()
        }
    }

    #[test]
    fn render_production_shows_epsilon() {
        let mut g = CfgBuilder::new("S");
        g.terminal("a");
        g.rule("S", &[]);
        g.rule("S", &["a"]);
        let g = g.build().unwrap();
        assert!(g.render_production(&g.productions()[0]).contains('ε'));
        assert!(g.to_string().contains("2 productions"));
    }
}
