//! Classic grammar analyses: nullability, FIRST, FOLLOW, reachability.
//!
//! The Earley baseline uses the nullable set (for the ε-completion fix) and
//! the GLR baseline builds SLR(1) tables from FIRST/FOLLOW. All are the
//! standard worklist fixed points.

use crate::cfg::{Cfg, Symbol};
use std::collections::BTreeSet;

/// Per-nonterminal boolean: does it derive ε?
pub fn nullable_nonterminals(cfg: &Cfg) -> Vec<bool> {
    let mut nullable = vec![false; cfg.nonterminal_count()];
    let mut changed = true;
    while changed {
        changed = false;
        for p in cfg.productions() {
            if nullable[p.lhs as usize] {
                continue;
            }
            let all = p.rhs.iter().all(|s| match s {
                Symbol::T(_) => false,
                Symbol::N(n) => nullable[*n as usize],
            });
            if all {
                nullable[p.lhs as usize] = true;
                changed = true;
            }
        }
    }
    nullable
}

/// FIRST sets per nonterminal (sets of terminal indices; ε-membership is
/// given by [`nullable_nonterminals`]).
pub fn first_sets(cfg: &Cfg) -> Vec<BTreeSet<u32>> {
    let nullable = nullable_nonterminals(cfg);
    let mut first: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); cfg.nonterminal_count()];
    let mut changed = true;
    while changed {
        changed = false;
        for p in cfg.productions() {
            let lhs = p.lhs as usize;
            for sym in &p.rhs {
                match sym {
                    Symbol::T(t) => {
                        if first[lhs].insert(*t) {
                            changed = true;
                        }
                        break;
                    }
                    Symbol::N(n) => {
                        let add: Vec<u32> = first[*n as usize].iter().copied().collect();
                        for t in add {
                            if first[lhs].insert(t) {
                                changed = true;
                            }
                        }
                        if !nullable[*n as usize] {
                            break;
                        }
                    }
                }
            }
        }
    }
    first
}

/// FIRST of a sentential-form suffix: `(terminals, derives_epsilon)`.
pub fn first_of_seq(
    cfg: &Cfg,
    seq: &[Symbol],
    nullable: &[bool],
    first: &[BTreeSet<u32>],
) -> (BTreeSet<u32>, bool) {
    let _ = cfg;
    let mut out = BTreeSet::new();
    for sym in seq {
        match sym {
            Symbol::T(t) => {
                out.insert(*t);
                return (out, false);
            }
            Symbol::N(n) => {
                out.extend(first[*n as usize].iter().copied());
                if !nullable[*n as usize] {
                    return (out, false);
                }
            }
        }
    }
    (out, true)
}

/// FOLLOW sets per nonterminal. The start symbol's FOLLOW contains the
/// end-of-input marker, represented as `None`; terminal indices as `Some`.
pub fn follow_sets(cfg: &Cfg) -> Vec<BTreeSet<Option<u32>>> {
    let nullable = nullable_nonterminals(cfg);
    let first = first_sets(cfg);
    let mut follow: Vec<BTreeSet<Option<u32>>> = vec![BTreeSet::new(); cfg.nonterminal_count()];
    follow[cfg.start() as usize].insert(None);
    let mut changed = true;
    while changed {
        changed = false;
        for p in cfg.productions() {
            for (i, sym) in p.rhs.iter().enumerate() {
                let Symbol::N(n) = sym else { continue };
                let n = *n as usize;
                let (fst, eps) = first_of_seq(cfg, &p.rhs[i + 1..], &nullable, &first);
                for t in fst {
                    if follow[n].insert(Some(t)) {
                        changed = true;
                    }
                }
                if eps {
                    let add: Vec<Option<u32>> = follow[p.lhs as usize].iter().copied().collect();
                    for t in add {
                        if follow[n].insert(t) {
                            changed = true;
                        }
                    }
                }
            }
        }
    }
    follow
}

/// Nonterminals reachable from the start symbol.
pub fn reachable_nonterminals(cfg: &Cfg) -> Vec<bool> {
    let mut reach = vec![false; cfg.nonterminal_count()];
    let mut stack = vec![cfg.start()];
    reach[cfg.start() as usize] = true;
    while let Some(n) = stack.pop() {
        for &pi in cfg.productions_of(n) {
            for sym in &cfg.productions()[pi].rhs {
                if let Symbol::N(m) = sym {
                    if !reach[*m as usize] {
                        reach[*m as usize] = true;
                        stack.push(*m);
                    }
                }
            }
        }
    }
    reach
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::CfgBuilder;

    fn sample() -> Cfg {
        // S → A B, A → ε | 'a' A, B → 'b'
        let mut g = CfgBuilder::new("S");
        g.terminals(&["a", "b"]);
        g.rule("S", &["A", "B"]);
        g.rule("A", &[]);
        g.rule("A", &["a", "A"]);
        g.rule("B", &["b"]);
        g.build().unwrap()
    }

    #[test]
    fn nullable_computation() {
        let g = sample();
        let n = nullable_nonterminals(&g);
        let idx = |name: &str| g.nonterminal_index(name).unwrap() as usize;
        assert!(!n[idx("S")], "S needs a b");
        assert!(n[idx("A")]);
        assert!(!n[idx("B")]);
    }

    #[test]
    fn first_computation() {
        let g = sample();
        let first = first_sets(&g);
        let idx = |name: &str| g.nonterminal_index(name).unwrap() as usize;
        let t = |name: &str| g.terminal_index(name).unwrap();
        assert!(first[idx("A")].contains(&t("a")));
        assert!(first[idx("S")].contains(&t("a")), "via A");
        assert!(first[idx("S")].contains(&t("b")), "A nullable, so b too");
        assert!(!first[idx("B")].contains(&t("a")));
    }

    #[test]
    fn follow_computation() {
        let g = sample();
        let follow = follow_sets(&g);
        let idx = |name: &str| g.nonterminal_index(name).unwrap() as usize;
        let t = |name: &str| g.terminal_index(name).unwrap();
        assert!(follow[idx("S")].contains(&None), "start has EOF in FOLLOW");
        assert!(follow[idx("A")].contains(&Some(t("b"))));
        assert!(follow[idx("B")].contains(&None));
    }

    #[test]
    fn reachability() {
        let mut g = CfgBuilder::new("S");
        g.terminal("a");
        g.rule("S", &["a"]);
        g.rule("Dead", &["a"]);
        let g = g.build().unwrap();
        let r = reachable_nonterminals(&g);
        assert!(r[g.nonterminal_index("S").unwrap() as usize]);
        assert!(!r[g.nonterminal_index("Dead").unwrap() as usize]);
    }

    #[test]
    fn left_recursive_first_terminates() {
        let mut g = CfgBuilder::new("E");
        g.terminals(&["+", "n"]);
        g.rule("E", &["E", "+", "E"]);
        g.rule("E", &["n"]);
        let g = g.build().unwrap();
        let first = first_sets(&g);
        assert!(first[0].contains(&g.terminal_index("n").unwrap()));
        assert!(!first[0].contains(&g.terminal_index("+").unwrap()));
    }
}
