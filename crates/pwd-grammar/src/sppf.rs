//! The shared SPPF builder: from *derivation facts* to a canonical packed
//! forest.
//!
//! Chart- and stack-based parsers both end a run knowing, for each
//! production `p` and span `[i, j)`, whether `p` derives `tokens[i..j)` —
//! Earley reads it off completed chart items, GLR records it as reductions
//! pack the graph-structured stack. By context-freeness that relation
//! determines the *entire* set of derivations, so one builder can serve
//! every backend: walk top-down from `(start, 0, n)`, split each production
//! over its span against the fact set, and emit canonical
//! production-labeled nodes over hash-consed spines — the same normal form
//! `pwd_forest`'s canonicalizer produces from PWD's derivative forests,
//! which is what makes forest fingerprints comparable across all three
//! parser families.

use crate::cfg::{Cfg, Symbol};
use pwd_forest::{Forest, ForestId, Knot, KnotTable, ParseForest};
use std::collections::HashSet;

/// The derivation-fact set: which productions derive which input spans.
///
/// Backends populate it from their native structures (chart items, GSS
/// reductions); [`build_sppf`] consumes it. Facts must be *sound* (every
/// recorded `(p, i, j)` really derives `tokens[i..j)`); the builder
/// revalidates splits against the set, so extra unreachable facts cost
/// time, never correctness.
#[derive(Debug, Default, Clone)]
pub struct ProductionSpans {
    set: HashSet<(u32, u32, u32)>,
}

impl ProductionSpans {
    /// An empty fact set.
    pub fn new() -> ProductionSpans {
        ProductionSpans::default()
    }

    /// Records that production `prod` derives `tokens[from..to)`.
    pub fn insert(&mut self, prod: usize, from: usize, to: usize) {
        self.set.insert((prod as u32, from as u32, to as u32));
    }

    /// Does the fact set contain `(prod, from, to)`?
    pub fn contains(&self, prod: usize, from: usize, to: usize) -> bool {
        self.set.contains(&(prod as u32, from as u32, to as u32))
    }

    /// Number of recorded facts.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Is the fact set empty?
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

impl Extend<(usize, usize, usize)> for ProductionSpans {
    fn extend<T: IntoIterator<Item = (usize, usize, usize)>>(&mut self, iter: T) {
        for (p, i, j) in iter {
            self.insert(p, i, j);
        }
    }
}

/// Builds the canonical shared parse forest of `tokens` from a derivation
/// fact set (see [`ProductionSpans`]). `texts[i]` is the lexeme text of
/// token `i` (leaf identity is `(kind, text)`, matching the PWD engine's
/// lexeme-carrying leaves).
///
/// Returns the forest rooted at `(start, 0, n)`; if the facts do not
/// derive the full input the root is the canonical empty node (count 0) —
/// the same shape every backend reports for a rejected input.
///
/// # Panics
///
/// Panics if `texts.len() != tokens.len()`.
pub fn build_sppf(
    cfg: &Cfg,
    tokens: &[u32],
    texts: &[&str],
    spans: &ProductionSpans,
) -> ParseForest {
    assert_eq!(tokens.len(), texts.len(), "one lexeme text per token");
    let mut b = Builder {
        cfg,
        tokens,
        texts,
        spans,
        forest: Forest::hash_consed(),
        memo: KnotTable::new(),
    };
    let root = b.nt_node(cfg.start(), 0, tokens.len());
    ParseForest::new(b.forest, root)
}

struct Builder<'a> {
    cfg: &'a Cfg,
    tokens: &'a [u32],
    texts: &'a [&'a str],
    spans: &'a ProductionSpans,
    forest: Forest,
    memo: KnotTable<(u32, u32, u32)>,
}

impl Builder<'_> {
    /// The packed node for all derivations of `nt` over `[from, to)`.
    /// Cycles (unit/ε cycles derive a span from itself) tie knots through
    /// reserved placeholders, producing cyclic — infinitely ambiguous —
    /// forests rather than diverging.
    fn nt_node(&mut self, nt: u32, from: usize, to: usize) -> ForestId {
        let key = (nt, from as u32, to as u32);
        match self.memo.enter(key, &mut self.forest) {
            Knot::Done(id) => return id,
            Knot::Cycle(ph) => return ph,
            Knot::Fresh => {}
        }
        let mut alts = Vec::new();
        let name = self.cfg.nonterminal_name(nt).to_string();
        for &pi in self.cfg.productions_of(nt) {
            if !self.spans.contains(pi, from, to) {
                continue;
            }
            let rhs = self.cfg.productions()[pi].rhs.clone();
            let mut components = Vec::with_capacity(rhs.len());
            let mut lists = Vec::new();
            self.splits(&rhs, 0, from, to, &mut components, &mut lists);
            for comps in lists {
                let spine = self.forest.right_spine(&comps);
                alts.push(self.forest.label(&name, rhs.len(), spine));
            }
        }
        let r = self.forest.amb(alts);
        self.memo.finish(key, &mut self.forest, r)
    }

    /// Enumerates every split of `rhs[k..]` over `[from, to)` admitted by
    /// the fact set, pushing one component list per split into `lists`.
    fn splits(
        &mut self,
        rhs: &[Symbol],
        k: usize,
        from: usize,
        to: usize,
        components: &mut Vec<ForestId>,
        lists: &mut Vec<Vec<ForestId>>,
    ) {
        if k == rhs.len() {
            if from == to {
                lists.push(components.clone());
            }
            return;
        }
        match rhs[k] {
            Symbol::T(t) => {
                if from < to && self.tokens[from] == t {
                    let kind = self.cfg.terminal_name(t).to_string();
                    let leaf = self.forest.leaf(&kind, self.texts[from]);
                    components.push(leaf);
                    self.splits(rhs, k + 1, from + 1, to, components, lists);
                    components.pop();
                }
            }
            Symbol::N(m) => {
                for mid in from..=to {
                    if !self.nt_derives(m, from, mid) {
                        continue;
                    }
                    let node = self.nt_node(m, from, mid);
                    components.push(node);
                    self.splits(rhs, k + 1, mid, to, components, lists);
                    components.pop();
                }
            }
        }
    }

    fn nt_derives(&self, nt: u32, from: usize, to: usize) -> bool {
        self.cfg.productions_of(nt).iter().any(|&pi| self.spans.contains(pi, from, to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::CfgBuilder;
    use pwd_forest::{EnumLimits, TreeCount};

    /// Brute-force oracle: all true derivation facts for tiny grammars, by
    /// checking every (production, span) with a recursive matcher.
    fn oracle_spans(cfg: &Cfg, tokens: &[u32]) -> ProductionSpans {
        fn sym_derives(
            cfg: &Cfg,
            sym: &Symbol,
            toks: &[u32],
            i: usize,
            j: usize,
            depth: usize,
        ) -> bool {
            if depth > 24 {
                return false;
            }
            match sym {
                Symbol::T(t) => j == i + 1 && toks[i] == *t,
                Symbol::N(m) => cfg
                    .productions_of(*m)
                    .iter()
                    .any(|&pi| prod_derives(cfg, pi, toks, i, j, depth + 1)),
            }
        }
        fn prod_derives(
            cfg: &Cfg,
            pi: usize,
            toks: &[u32],
            i: usize,
            j: usize,
            depth: usize,
        ) -> bool {
            fn rest(
                cfg: &Cfg,
                rhs: &[Symbol],
                toks: &[u32],
                i: usize,
                j: usize,
                depth: usize,
            ) -> bool {
                match rhs {
                    [] => i == j,
                    [s, more @ ..] => (i..=j).any(|mid| {
                        sym_derives(cfg, s, toks, i, mid, depth)
                            && rest(cfg, more, toks, mid, j, depth)
                    }),
                }
            }
            if depth > 24 {
                return false;
            }
            let rhs = cfg.productions()[pi].rhs.clone();
            rest(cfg, &rhs, toks, i, j, depth)
        }
        let mut spans = ProductionSpans::new();
        let n = tokens.len();
        for pi in 0..cfg.productions().len() {
            for i in 0..=n {
                for j in i..=n {
                    if prod_derives(cfg, pi, tokens, i, j, 0) {
                        spans.insert(pi, i, j);
                    }
                }
            }
        }
        spans
    }

    fn catalan_cfg() -> Cfg {
        let mut g = CfgBuilder::new("S");
        g.terminal("a");
        g.rule("S", &["S", "S"]);
        g.rule("S", &["a"]);
        g.build().unwrap()
    }

    #[test]
    fn catalan_counts_from_facts() {
        let cfg = catalan_cfg();
        let catalan: [u128; 7] = [1, 1, 2, 5, 14, 42, 132];
        for n in 1..=7usize {
            let tokens = vec![0u32; n];
            let texts = vec!["a"; n];
            let spans = oracle_spans(&cfg, &tokens);
            let pf = build_sppf(&cfg, &tokens, &texts, &spans);
            assert_eq!(pf.count(), TreeCount::Finite(catalan[n - 1]), "n={n}");
        }
    }

    #[test]
    fn trees_have_production_shape() {
        let cfg = catalan_cfg();
        let tokens = vec![0u32, 0];
        let spans = oracle_spans(&cfg, &tokens);
        let pf = build_sppf(&cfg, &tokens, &["x", "y"], &spans);
        let ts = pf.trees(EnumLimits::default());
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].to_string(), "(S (S x) (S y))");
        assert_eq!(ts[0].fringe(), vec!["x", "y"]);
    }

    #[test]
    fn rejected_input_is_the_empty_forest() {
        let cfg = catalan_cfg();
        let spans = ProductionSpans::new();
        let pf = build_sppf(&cfg, &[0], &["a"], &spans);
        assert!(!pf.has_tree());
        assert_eq!(pf.count(), TreeCount::Finite(0));
    }

    #[test]
    fn epsilon_and_unit_cycles_build_cyclic_forests() {
        // S → S | A, A → ε: infinitely many derivations of the empty word.
        let mut g = CfgBuilder::new("S");
        g.terminal("x");
        g.rule("S", &["S"]);
        g.rule("S", &["A"]);
        g.rule("A", &[]);
        let cfg = g.build().unwrap();
        let spans = oracle_spans(&cfg, &[]);
        // The oracle's depth cap records the unit fact (S → S over ε).
        assert!(spans.contains(0, 0, 0), "unit cycle fact present");
        let pf = build_sppf(&cfg, &[], &[], &spans);
        assert_eq!(pf.count(), TreeCount::Infinite);
        assert!(pf.has_tree());
        assert!(!pf.trees(EnumLimits { max_trees: 4, max_depth: 32 }).is_empty());
    }

    #[test]
    fn nullable_components_span_empty_ranges() {
        // S → A b, A → ε | a.
        let mut g = CfgBuilder::new("S");
        g.terminals(&["a", "b"]);
        g.rule("S", &["A", "b"]);
        g.rule("A", &[]);
        g.rule("A", &["a"]);
        let cfg = g.build().unwrap();
        let b = cfg.terminal_index("b").unwrap();
        let tokens = vec![b];
        let spans = oracle_spans(&cfg, &tokens);
        let pf = build_sppf(&cfg, &tokens, &["b"], &spans);
        assert_eq!(pf.count(), TreeCount::Finite(1));
        assert_eq!(pf.trees(EnumLimits::default())[0].to_string(), "(S (A) b)");
    }
}
