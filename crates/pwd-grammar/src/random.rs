//! Random CFG generation for differential testing and fuzzing.
//!
//! The integration suite checks that PWD, Earley, and GLR agree on
//! membership; random grammars widen that net far beyond the hand-written
//! corpus. Generated grammars are always *well-formed* (every nonterminal
//! has a production) and can be post-processed with
//! [`remove_useless`](crate::remove_useless).

use crate::cfg::{Cfg, CfgBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Shape parameters for [`random_cfg`].
#[derive(Debug, Clone, Copy)]
pub struct RandomCfgConfig {
    /// Number of nonterminals (≥ 1).
    pub nonterminals: usize,
    /// Number of terminals (≥ 1).
    pub terminals: usize,
    /// Extra productions beyond the one-per-nonterminal minimum.
    pub extra_productions: usize,
    /// Maximum right-hand-side length.
    pub max_rhs: usize,
    /// Probability that a generated symbol is a terminal.
    pub terminal_bias: f64,
    /// Probability that a nonterminal's guaranteed production is ε.
    pub epsilon_chance: f64,
}

impl Default for RandomCfgConfig {
    fn default() -> Self {
        RandomCfgConfig {
            nonterminals: 4,
            terminals: 2,
            extra_productions: 6,
            max_rhs: 4,
            terminal_bias: 0.55,
            epsilon_chance: 0.2,
        }
    }
}

/// Generates a random well-formed grammar, deterministically in `seed`.
///
/// Terminals are named `t0, t1, …`; nonterminals `N0 … Nk` with `N0` the
/// start symbol. Every nonterminal receives at least one production whose
/// symbols are biased toward terminals, so most generated grammars are
/// productive (run [`remove_useless`](crate::remove_useless) to guarantee
/// it).
///
/// # Examples
///
/// ```
/// use pwd_grammar::{random_cfg, RandomCfgConfig};
/// let cfg = random_cfg(&RandomCfgConfig::default(), 7);
/// assert!(cfg.production_count() >= 4);
/// assert_eq!(random_cfg(&RandomCfgConfig::default(), 7).production_count(),
///            cfg.production_count(), "deterministic in the seed");
/// ```
pub fn random_cfg(config: &RandomCfgConfig, seed: u64) -> Cfg {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = config.nonterminals.max(1);
    let t = config.terminals.max(1);
    let mut b = CfgBuilder::new("N0");
    let term_names: Vec<String> = (0..t).map(|i| format!("t{i}")).collect();
    for name in &term_names {
        b.terminal(name);
    }
    let nt_names: Vec<String> = (0..n).map(|i| format!("N{i}")).collect();

    let body = |rng: &mut StdRng, guaranteed: bool| -> Vec<String> {
        if guaranteed && rng.random_bool(config.epsilon_chance) {
            return Vec::new();
        }
        let len = rng.random_range(if guaranteed { 1 } else { 0 }..=config.max_rhs.max(1));
        (0..len)
            .map(|_| {
                if guaranteed || rng.random_bool(config.terminal_bias) {
                    term_names[rng.random_range(0..t)].clone()
                } else {
                    nt_names[rng.random_range(0..n)].clone()
                }
            })
            .collect()
    };

    // One guaranteed (mostly terminal) production per nonterminal.
    for name in &nt_names {
        let rhs = body(&mut rng, true);
        let refs: Vec<&str> = rhs.iter().map(String::as_str).collect();
        b.rule(name, &refs);
    }
    for _ in 0..config.extra_productions {
        let lhs = nt_names[rng.random_range(0..n)].clone();
        let rhs = body(&mut rng, false);
        let refs: Vec<&str> = rhs.iter().map(String::as_str).collect();
        b.rule(&lhs, &refs);
    }
    b.build().expect("generator emits well-formed grammars")
}

/// Generates a random token-kind string over a grammar's terminals
/// (uniform, length in `0..=max_len`), for membership fuzzing.
pub fn random_input(cfg: &Cfg, max_len: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = rng.random_range(0..=max_len);
    (0..len)
        .map(|_| cfg.terminal_name(rng.random_range(0..cfg.terminal_count()) as u32).to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::remove_useless;

    #[test]
    fn generates_wellformed_grammars() {
        for seed in 0..50 {
            let cfg = random_cfg(&RandomCfgConfig::default(), seed);
            assert!(cfg.production_count() >= cfg.nonterminal_count());
        }
    }

    #[test]
    fn most_generated_grammars_are_productive() {
        let mut productive = 0;
        for seed in 0..50 {
            if remove_useless(&random_cfg(&RandomCfgConfig::default(), seed)).is_ok() {
                productive += 1;
            }
        }
        assert!(productive >= 45, "only {productive}/50 productive");
    }

    #[test]
    fn random_inputs_respect_bounds() {
        let cfg = random_cfg(&RandomCfgConfig::default(), 1);
        for seed in 0..20 {
            let input = random_input(&cfg, 7, seed);
            assert!(input.len() <= 7);
            for k in &input {
                assert!(cfg.terminal_index(k).is_some());
            }
        }
    }
}
