//! Workload generators: the synthetic stand-in for the paper's corpus.
//!
//! The paper benchmarks on the 663 files of the Python 3.4.3 Standard
//! Library, up to 26,125 tokens each (§4.1). We cannot redistribute that
//! corpus, so [`python_source`] generates realistic Python-like modules at a
//! requested token count: nested function/class definitions, control flow,
//! and expression statements with call/attribute/subscript trailers — the
//! constructs that dominate real Python token streams. Generators for the
//! other corpus grammars ([`arith_source`], [`json_source`],
//! [`ambiguous_input`]) support the complexity sweeps.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a Python-like module of roughly `target_tokens` tokens
/// (within ~15% above; the generator appends whole top-level items).
///
/// Deterministic in `seed`.
pub fn python_source(target_tokens: usize, seed: u64) -> String {
    let mut g = PyGen { rng: StdRng::seed_from_u64(seed), names: 0 };
    let mut out = String::new();
    let mut emitted = 0usize;
    while emitted < target_tokens {
        let item = g.top_level_item();
        // Fast token estimate: words + punctuation; exact enough to stop
        // near the target (callers re-tokenize for exact counts).
        emitted += estimate_tokens(&item);
        out.push_str(&item);
        out.push('\n');
    }
    out
}

fn estimate_tokens(s: &str) -> usize {
    s.split_whitespace().map(|w| 1 + w.chars().filter(|c| "()[]{},.:".contains(*c)).count()).sum()
}

struct PyGen {
    rng: StdRng,
    names: usize,
}

impl PyGen {
    fn fresh(&mut self, prefix: &str) -> String {
        self.names += 1;
        format!("{prefix}{}", self.names)
    }

    fn name(&mut self) -> String {
        const POOL: &[&str] = &[
            "x", "y", "z", "data", "item", "count", "total", "result", "value", "node", "key",
            "acc", "idx", "obj", "buf",
        ];
        // Mix a hot pool (like real code's `self`, `i`, …) with a long tail
        // of distinct identifiers, approximating the lexeme diversity of the
        // paper's Python Standard Library corpus.
        if self.rng.random_bool(0.4) {
            POOL[self.rng.random_range(0..POOL.len())].to_string()
        } else {
            format!(
                "{}{}",
                POOL[self.rng.random_range(0..POOL.len())],
                self.rng.random_range(0..500u32)
            )
        }
    }

    fn number(&mut self) -> String {
        self.rng.random_range(0..100_000u32).to_string()
    }

    fn top_level_item(&mut self) -> String {
        match self.rng.random_range(0..12u32) {
            0..=3 => self.funcdef(0),
            4..=5 => self.classdef(0),
            6 => format!("import {}\n", self.fresh("mod")),
            7 => format!("@{}\n{}", self.name(), self.funcdef(0)),
            _ => self.statement(0),
        }
    }

    fn funcdef(&mut self, indent: usize) -> String {
        let pad = "    ".repeat(indent);
        let name = self.fresh("fn");
        let nparams = self.rng.random_range(0..4usize);
        let params: Vec<String> = (0..nparams)
            .map(|i| {
                let p = format!("p{i}");
                if self.rng.random_range(0..3u32) == 0 {
                    format!("{p}={}", self.number())
                } else {
                    p
                }
            })
            .collect();
        let mut body = format!("{pad}def {name}({}):\n", params.join(", "));
        let n = self.rng.random_range(1..5usize);
        for _ in 0..n {
            body.push_str(&self.statement(indent + 1));
        }
        body.push_str(&format!("{}return {}\n", "    ".repeat(indent + 1), self.expr(2)));
        body
    }

    fn classdef(&mut self, indent: usize) -> String {
        let pad = "    ".repeat(indent);
        let name = self.fresh("Cls");
        let mut body = format!("{pad}class {name}:\n");
        let n = self.rng.random_range(1..4usize);
        for _ in 0..n {
            body.push_str(&self.funcdef(indent + 1));
        }
        body
    }

    fn statement(&mut self, indent: usize) -> String {
        let pad = "    ".repeat(indent);
        match self.rng.random_range(0..12u32) {
            0..=4 => format!("{pad}{} = {}\n", self.name(), self.expr(3)),
            5 => format!("{pad}{} += {}\n", self.name(), self.expr(2)),
            6 => {
                let mut s = format!("{pad}if {}:\n", self.expr(2));
                s.push_str(&self.statement(indent + 1));
                if self.rng.random_bool(0.4) {
                    s.push_str(&format!("{pad}else:\n"));
                    s.push_str(&self.statement(indent + 1));
                }
                s
            }
            7 => {
                let mut s = format!("{pad}for {} in range({}):\n", self.name(), self.number());
                s.push_str(&self.statement(indent + 1));
                s
            }
            8 => {
                let mut s = format!("{pad}while {} < {}:\n", self.name(), self.number());
                s.push_str(&self.statement(indent + 1));
                s
            }
            9 => format!("{pad}print({})\n", self.expr(2)),
            10 => format!("{pad}assert {}, \"invariant\"\n", self.expr(2)),
            _ => format!("{pad}pass\n"),
        }
    }

    fn expr(&mut self, depth: usize) -> String {
        if depth == 0 {
            return match self.rng.random_range(0..4u32) {
                0 => self.number(),
                1 => format!("\"s{}\"", self.rng.random_range(0..50u32)),
                2 => "None".to_string(),
                _ => self.name(),
            };
        }
        match self.rng.random_range(0..10u32) {
            0..=3 => {
                let op = ["+", "-", "*", "//", "%"][self.rng.random_range(0..5usize)];
                format!("{} {op} {}", self.expr(depth - 1), self.expr(depth - 1))
            }
            4 => {
                let op = ["==", "!=", "<", ">", "<=", ">="][self.rng.random_range(0..6usize)];
                format!("{} {op} {}", self.expr(depth - 1), self.expr(depth - 1))
            }
            5 => format!("{}.{}({})", self.name(), self.name(), self.expr(depth - 1)),
            6 => format!("{}[{}]", self.name(), self.expr(depth - 1)),
            7 => format!("({})", self.expr(depth - 1)),
            8 => format!("[{}, {}]", self.expr(depth - 1), self.expr(depth - 1)),
            _ => format!("{}({})", self.name(), self.expr(depth - 1)),
        }
    }
}

/// Generates a random arithmetic expression (for the `arith` grammar) with
/// roughly `target_tokens` tokens.
pub fn arith_source(target_tokens: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::new();
    let mut tokens = 1;
    out.push_str(&rng.random_range(0..100u32).to_string());
    while tokens + 2 <= target_tokens {
        let op = ["+", "-", "*", "/"][rng.random_range(0..4usize)];
        // Occasionally parenthesize a sub-expression for nesting.
        if rng.random_bool(0.15) && tokens + 4 <= target_tokens {
            out = format!("({out})");
            tokens += 2;
        }
        out.push_str(op);
        out.push_str(&rng.random_range(0..100u32).to_string());
        tokens += 2;
    }
    out
}

/// Generates a JSON document (for the `json` grammar) with roughly
/// `target_tokens` tokens.
pub fn json_source(target_tokens: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut budget = target_tokens as isize;
    json_value(&mut rng, 4, &mut budget)
}

fn json_value(rng: &mut StdRng, depth: usize, budget: &mut isize) -> String {
    *budget -= 1;
    if depth == 0 || *budget <= 2 {
        return match rng.random_range(0..4u32) {
            0 => format!("\"k{}\"", rng.random_range(0..100u32)),
            1 => rng.random_range(0..1000u32).to_string(),
            2 => "true".to_string(),
            _ => "null".to_string(),
        };
    }
    if rng.random_bool(0.5) {
        let n = rng.random_range(1..5usize);
        let items: Vec<String> = (0..n)
            .map(|i| {
                *budget -= 3;
                format!("\"f{i}\": {}", json_value(rng, depth - 1, budget))
            })
            .collect();
        format!("{{{}}}", items.join(", "))
    } else {
        let n = rng.random_range(1..5usize);
        let items: Vec<String> = (0..n)
            .map(|_| {
                *budget -= 1;
                json_value(rng, depth - 1, budget)
            })
            .collect();
        format!("[{}]", items.join(", "))
    }
}

/// The input `aⁿ` for the ambiguous grammars.
pub fn ambiguous_input(n: usize) -> String {
    "a".repeat(n)
}

/// Generates a PL/0 program (for the [`pl0`](crate::grammars::pl0) grammar)
/// of roughly `target_tokens` tokens whose identifiers and literals are
/// **mostly unique** — the lexeme-diversity profile of real programs, where
/// value-keyed derive memoization degenerates to all-miss.
///
/// Identifier lexemes are drawn fresh from a serial counter with
/// probability `1 - reuse`, so `reuse = 0.1` means ~90% of identifier
/// occurrences are first occurrences. Deterministic in `seed`.
pub fn pl0_source(target_tokens: usize, seed: u64, reuse: f64) -> String {
    let mut g = Pl0Gen { rng: StdRng::seed_from_u64(seed), names: 0, reuse };
    // A var header exercises the declaration rules and seeds the name pool.
    let decls: Vec<String> = (0..4).map(|_| g.fresh()).collect();
    let mut out = format!("var {};\nbegin\n", decls.join(", "));
    let mut emitted = estimate_tokens(&out);
    let mut first = true;
    while emitted < target_tokens {
        let stmt = g.statement(2);
        emitted += estimate_tokens(&stmt) + 1;
        if !first {
            out.push_str(";\n");
        }
        first = false;
        out.push_str("  ");
        out.push_str(&stmt);
    }
    out.push_str("\nend.");
    out
}

struct Pl0Gen {
    rng: StdRng,
    names: usize,
    reuse: f64,
}

impl Pl0Gen {
    fn fresh(&mut self) -> String {
        self.names += 1;
        format!("v{}", self.names)
    }

    fn ident(&mut self) -> String {
        if self.names > 0 && self.rng.random_bool(self.reuse) {
            format!("v{}", self.rng.random_range(1..=self.names))
        } else {
            self.fresh()
        }
    }

    fn number(&mut self) -> String {
        self.rng.random_range(0..1_000_000u32).to_string()
    }

    fn statement(&mut self, depth: usize) -> String {
        match self.rng.random_range(0..14u32) {
            0..=6 => format!("{} := {}", self.ident(), self.expr(2)),
            7 if depth > 0 => {
                format!("if {} then {}", self.cond(), self.statement(depth - 1))
            }
            8 if depth > 0 => {
                format!("while {} do {}", self.cond(), self.statement(depth - 1))
            }
            9 if depth > 0 => {
                format!("repeat {} until {}", self.statement(depth - 1), self.cond())
            }
            10 => format!("call {}", self.ident()),
            11 => format!("read {}", self.ident()),
            12 => format!("write {}", self.expr(2)),
            _ => {
                let first = format!("{} := {}", self.ident(), self.expr(1));
                let second = format!("{} := {}", self.ident(), self.expr(1));
                format!("begin {first}; {second} end")
            }
        }
    }

    fn cond(&mut self) -> String {
        if self.rng.random_bool(0.25) {
            format!("odd {}", self.expr(1))
        } else {
            let rel = ["=", "#", "<", "<=", ">", ">="][self.rng.random_range(0..6usize)];
            format!("{} {rel} {}", self.expr(1), self.expr(1))
        }
    }

    fn expr(&mut self, depth: usize) -> String {
        if depth == 0 {
            return if self.rng.random_bool(0.6) { self.ident() } else { self.number() };
        }
        match self.rng.random_range(0..9u32) {
            0..=3 => {
                let op = ["+", "-", "*", "/", "mod", "div"][self.rng.random_range(0..6usize)];
                format!("{} {op} {}", self.expr(depth - 1), self.expr(depth - 1))
            }
            4 => format!("({})", self.expr(depth - 1)),
            // Parenthesized so the leading sign is valid in any position
            // (PL/0 allows a sign only at the head of a unary chain).
            5 => format!("(-{})", self.expr(depth - 1)),
            6 => format!("{}[{}]", self.ident(), self.expr(depth - 1)),
            7 => format!("{}({})", self.ident(), self.expr(depth - 1)),
            _ => self.expr(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::Compiled;
    use crate::grammars;
    use pwd_core::ParserConfig;

    #[test]
    fn python_generator_is_deterministic() {
        assert_eq!(python_source(200, 7), python_source(200, 7));
        assert_ne!(python_source(200, 7), python_source(200, 8));
    }

    #[test]
    fn python_generator_tokenizes_and_parses() {
        let src = python_source(300, 42);
        let lexemes = pwd_lex::tokenize_python(&src)
            .unwrap_or_else(|e| panic!("generated source must tokenize: {e}\n{src}"));
        assert!(lexemes.len() >= 200, "got {} tokens", lexemes.len());
        let mut c = Compiled::compile(&grammars::python::cfg(), ParserConfig::improved());
        assert!(c.recognize_lexemes(&lexemes).unwrap(), "generated source must parse:\n{src}");
    }

    #[test]
    fn python_generator_scales_with_target() {
        let small = pwd_lex::tokenize_python(&python_source(100, 1)).unwrap().len();
        let large = pwd_lex::tokenize_python(&python_source(2000, 1)).unwrap().len();
        assert!(large > small * 5, "small={small} large={large}");
    }

    #[test]
    fn arith_generator_parses() {
        let src = arith_source(99, 3);
        let lexemes = grammars::arith::lexer().tokenize(&src).unwrap();
        let mut c = Compiled::compile(&grammars::arith::cfg(), ParserConfig::improved());
        assert!(c.recognize_lexemes(&lexemes).unwrap(), "{src}");
    }

    #[test]
    fn json_generator_parses() {
        let src = json_source(150, 5);
        let lexemes = grammars::json::lexer().tokenize(&src).unwrap();
        let mut c = Compiled::compile(&grammars::json::cfg(), ParserConfig::improved());
        assert!(c.recognize_lexemes(&lexemes).unwrap(), "{src}");
    }

    #[test]
    fn pl0_generator_parses_and_is_lexeme_diverse() {
        let src = pl0_source(400, 11, 0.1);
        let lexemes = grammars::pl0::lexer()
            .tokenize(&src)
            .unwrap_or_else(|e| panic!("generated PL/0 must tokenize: {e}\n{src}"));
        assert!(lexemes.len() >= 300, "got {} tokens", lexemes.len());
        let mut c = Compiled::compile(&grammars::pl0::cfg(), ParserConfig::improved());
        assert!(c.recognize_lexemes(&lexemes).unwrap(), "generated PL/0 must parse:\n{src}");
        // The point of the workload: identifier occurrences are mostly
        // distinct lexemes.
        let ids: Vec<&str> =
            lexemes.iter().filter(|l| l.kind == "ID").map(|l| l.text.as_str()).collect();
        let distinct: std::collections::HashSet<&str> = ids.iter().copied().collect();
        assert!(
            distinct.len() * 10 >= ids.len() * 8,
            "wanted ≥80% unique identifiers, got {}/{}",
            distinct.len(),
            ids.len()
        );
        assert_eq!(pl0_source(400, 11, 0.1), src, "deterministic in the seed");
    }

    #[test]
    fn ambiguous_input_shape() {
        assert_eq!(ambiguous_input(3), "aaa");
        assert_eq!(ambiguous_input(0), "");
    }
}
