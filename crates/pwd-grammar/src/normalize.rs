//! Classical grammar normalizations: ε-elimination and unit-production
//! elimination.
//!
//! PWD needs neither (it handles ε and unit chains natively — that is the
//! point of the paper), but the baselines' literature does, and having the
//! transforms lets the test suite check a strong semantic property: the
//! *language* is preserved (modulo the empty word for ε-elimination), with
//! all five parsers agreeing before and after.

use crate::analysis::nullable_nonterminals;
use crate::cfg::{Cfg, CfgBuilder, Production, Symbol};
use crate::transform::TransformError;
use std::collections::BTreeSet;

/// Eliminates ε-productions, preserving `L(G) ∖ {ε}`.
///
/// For every production, every subset of its nullable nonterminal
/// occurrences may be omitted; productions whose right-hand side would
/// become empty are dropped (hence the `∖ {ε}`).
///
/// # Errors
///
/// [`TransformError`] if the result has a nonterminal with no productions
/// (e.g. a nonterminal that could *only* derive ε).
///
/// # Examples
///
/// ```
/// use pwd_grammar::{CfgBuilder, eliminate_epsilon};
/// let mut g = CfgBuilder::new("S");
/// g.terminals(&["a", "b"]);
/// g.rule("S", &["A", "b"]);
/// g.rule("A", &[]);
/// g.rule("A", &["a"]);
/// let g2 = eliminate_epsilon(&g.build().unwrap()).unwrap();
/// assert!(g2.productions().iter().all(|p| !p.rhs.is_empty()));
/// ```
pub fn eliminate_epsilon(cfg: &Cfg) -> Result<Cfg, TransformError> {
    let nullable = nullable_nonterminals(cfg);
    let start_name = cfg.nonterminal_name(cfg.start()).to_string();
    let mut b = CfgBuilder::new(&start_name);
    for t in 0..cfg.terminal_count() {
        b.terminal(cfg.terminal_name(t as u32));
    }
    let mut emitted: BTreeSet<(u32, Vec<Symbol>)> = BTreeSet::new();
    for p in cfg.productions() {
        // Positions of nullable-nonterminal occurrences.
        let optional: Vec<usize> = p
            .rhs
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Symbol::N(n) if nullable[*n as usize] => Some(i),
                _ => None,
            })
            .collect();
        // Cap subset enumeration to stay polynomial in pathological cases.
        let k = optional.len().min(12);
        for mask in 0..(1u32 << k) {
            let rhs: Vec<Symbol> = p
                .rhs
                .iter()
                .enumerate()
                .filter(|(i, _)| match optional.iter().position(|&o| o == *i) {
                    Some(bit) if bit < k => mask & (1 << bit) == 0,
                    _ => true,
                })
                .map(|(_, s)| *s)
                .collect();
            if rhs.is_empty() {
                continue;
            }
            emitted.insert((p.lhs, rhs));
        }
    }
    for (lhs, rhs) in emitted {
        let lhs_name = cfg.nonterminal_name(lhs).to_string();
        let names: Vec<String> = rhs
            .iter()
            .map(|s| match s {
                Symbol::T(t) => cfg.terminal_name(*t).to_string(),
                Symbol::N(n) => cfg.nonterminal_name(*n).to_string(),
            })
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        b.rule(&lhs_name, &refs);
    }
    b.build().map_err(TransformError::Rebuild)
}

/// Eliminates unit productions (`A → B`), preserving the language.
///
/// # Errors
///
/// [`TransformError`] if rebuilding fails (a nonterminal whose only
/// productions were unit cycles).
pub fn eliminate_units(cfg: &Cfg) -> Result<Cfg, TransformError> {
    let n = cfg.nonterminal_count();
    // unit_closure[a] = set of b with a ⇒* b via unit productions.
    let mut closure: Vec<BTreeSet<u32>> = (0..n).map(|i| BTreeSet::from([i as u32])).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for p in cfg.productions() {
            if let [Symbol::N(b_nt)] = p.rhs.as_slice() {
                let reach: Vec<u32> = closure[*b_nt as usize].iter().copied().collect();
                for set in &mut closure {
                    if set.contains(&p.lhs) {
                        for r in &reach {
                            if set.insert(*r) {
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
    }
    let start_name = cfg.nonterminal_name(cfg.start()).to_string();
    let mut b = CfgBuilder::new(&start_name);
    for t in 0..cfg.terminal_count() {
        b.terminal(cfg.terminal_name(t as u32));
    }
    let mut emitted: BTreeSet<(u32, Vec<Symbol>)> = BTreeSet::new();
    for (a, reachable) in closure.iter().enumerate() {
        for &via in reachable {
            for &pi in cfg.productions_of(via) {
                let p: &Production = &cfg.productions()[pi];
                if matches!(p.rhs.as_slice(), [Symbol::N(_)]) {
                    continue; // unit productions are replaced by the closure
                }
                emitted.insert((a as u32, p.rhs.clone()));
            }
        }
    }
    for (lhs, rhs) in emitted {
        let lhs_name = cfg.nonterminal_name(lhs).to_string();
        let names: Vec<String> = rhs
            .iter()
            .map(|s| match s {
                Symbol::T(t) => cfg.terminal_name(*t).to_string(),
                Symbol::N(nt) => cfg.nonterminal_name(*nt).to_string(),
            })
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        b.rule(&lhs_name, &refs);
    }
    b.build().map_err(TransformError::Rebuild)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::Compiled;
    use crate::grammars;
    use pwd_core::ParserConfig;

    fn accepts(cfg: &Cfg, kinds: &[&str]) -> bool {
        let mut c = Compiled::compile(cfg, ParserConfig::improved());
        let toks: Vec<_> = kinds.iter().map(|k| c.token(k, k).unwrap()).collect();
        c.lang.recognize(c.start, &toks).unwrap()
    }

    #[test]
    fn epsilon_elimination_preserves_nonempty_words() {
        let mut g = CfgBuilder::new("S");
        g.terminals(&["a", "b"]);
        g.rule("S", &["A", "B"]);
        g.rule("A", &[]);
        g.rule("A", &["a", "A"]);
        g.rule("B", &["b"]);
        g.rule("B", &["b", "B"]);
        let cfg = g.build().unwrap();
        let cfg2 = eliminate_epsilon(&cfg).unwrap();
        assert!(cfg2.productions().iter().all(|p| !p.rhs.is_empty()));
        for input in
            [&["b"][..], &["a", "b"][..], &["a", "a", "b", "b"][..], &["a"][..], &["b", "a"][..]]
        {
            assert_eq!(accepts(&cfg, input), accepts(&cfg2, input), "{input:?}");
        }
    }

    #[test]
    fn epsilon_elimination_drops_empty_word_only() {
        let mut g = CfgBuilder::new("S");
        g.terminal("a");
        g.rule("S", &[]);
        g.rule("S", &["a", "S"]);
        let cfg = g.build().unwrap();
        let cfg2 = eliminate_epsilon(&cfg).unwrap();
        assert!(accepts(&cfg, &[]));
        assert!(!accepts(&cfg2, &[]), "ε must be gone");
        for n in 1..5 {
            let kinds: Vec<&str> = std::iter::repeat_n("a", n).collect();
            assert!(accepts(&cfg2, &kinds), "n={n}");
        }
    }

    #[test]
    fn unit_elimination_preserves_language() {
        let cfg = grammars::arith::cfg();
        let cfg2 = eliminate_units(&cfg).unwrap();
        assert!(cfg2.productions().iter().all(|p| !matches!(p.rhs.as_slice(), [Symbol::N(_)])));
        for input in [
            &["NUM"][..],
            &["NUM", "+", "NUM"][..],
            &["NUM", "*", "NUM", "+", "NUM"][..],
            &["(", "NUM", ")"][..],
            &["NUM", "+"][..],
            &["(", ")"][..],
        ] {
            assert_eq!(accepts(&cfg, input), accepts(&cfg2, input), "{input:?}");
        }
    }

    #[test]
    fn unit_cycles_are_flattened() {
        // A → B, B → A | 'a': the cycle collapses to A → a, B → a.
        let mut g = CfgBuilder::new("A");
        g.terminal("a");
        g.rule("A", &["B"]);
        g.rule("B", &["A"]);
        g.rule("B", &["a"]);
        let cfg = g.build().unwrap();
        let cfg2 = eliminate_units(&cfg).unwrap();
        assert!(accepts(&cfg2, &["a"]));
        assert!(!accepts(&cfg2, &[]));
    }

    #[test]
    fn random_differential_epsilon_and_units() {
        use crate::random::{random_cfg, random_input, RandomCfgConfig};
        use crate::transform::remove_useless;
        let shape = RandomCfgConfig::default();
        for seed in 300..330 {
            let Ok(cfg) = remove_useless(&random_cfg(&shape, seed)) else { continue };
            let Ok(no_eps) = eliminate_epsilon(&cfg) else { continue };
            let Ok(no_units) = eliminate_units(&cfg) else { continue };
            for input_seed in 0..10 {
                let input = random_input(&cfg, 6, seed * 13 + input_seed);
                let kinds: Vec<&str> = input.iter().map(String::as_str).collect();
                let want = accepts(&cfg, &kinds);
                if !kinds.is_empty() {
                    assert_eq!(want, accepts(&no_eps, &kinds), "ε-elim {seed} {kinds:?}\n{cfg}");
                }
                assert_eq!(want, accepts(&no_units, &kinds), "unit-elim {seed} {kinds:?}\n{cfg}");
            }
        }
    }
}
