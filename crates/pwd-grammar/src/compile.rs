//! Compiling a [`Cfg`] into a PWD expression graph (§2.5.1).
//!
//! Each production `N ::= X₁ … Xₖ` becomes the nested concatenation
//! `X₁ ◦ (X₂ ◦ (… ◦ Xₖ))` wrapped in a reduction that flattens the pair
//! spine into a labeled AST node `(N X₁ … Xₖ)`; a nonterminal's
//! alternatives are joined with `∪`, and nonterminal references become
//! direct pointers into the (cyclic) graph via `forward`/`define`.

use crate::cfg::{Cfg, Symbol};
use pwd_core::{Language, NodeId, ParserConfig, PwdError, Reduce, TermId, Token};
use std::collections::HashMap;
use std::fmt;

/// A grammar compiled into a [`Language`], ready to parse token streams.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The underlying PWD engine; exposed for metrics, reset, and advanced
    /// use.
    pub lang: Language,
    /// The start node.
    pub start: NodeId,
    term_ids: Vec<TermId>,
    term_by_name: HashMap<String, TermId>,
    term_names: Vec<String>,
}

/// Error produced when a token kind is not a terminal of the grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownTerminal {
    /// The unknown kind.
    pub kind: String,
    /// Index in the input lexeme stream.
    pub position: usize,
}

impl fmt::Display for UnknownTerminal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lexeme {} has kind {:?}, which is not a terminal of this grammar",
            self.position, self.kind
        )
    }
}

impl std::error::Error for UnknownTerminal {}

impl Compiled {
    /// Compiles a grammar with the given engine configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use pwd_grammar::{CfgBuilder, Compiled};
    /// use pwd_core::ParserConfig;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut g = CfgBuilder::new("S");
    /// g.terminal("a");
    /// g.rule("S", &["a", "S"]);
    /// g.rule("S", &[]);
    /// let mut c = Compiled::compile(&g.build()?, ParserConfig::improved());
    /// let toks = vec![c.token("a", "a").unwrap(); 3];
    /// assert!(c.lang.recognize(c.start, &toks)?);
    /// # Ok(())
    /// # }
    /// ```
    pub fn compile(cfg: &Cfg, config: ParserConfig) -> Compiled {
        let mut lang = Language::new(config);
        let term_ids: Vec<TermId> =
            (0..cfg.terminal_count()).map(|t| lang.terminal(cfg.terminal_name(t as u32))).collect();
        let term_by_name: HashMap<String, TermId> = (0..cfg.terminal_count())
            .map(|t| (cfg.terminal_name(t as u32).to_string(), term_ids[t]))
            .collect();

        // Forward-declare every nonterminal so cycles resolve.
        let nts: Vec<NodeId> = (0..cfg.nonterminal_count())
            .map(|n| {
                let f = lang.forward();
                lang.set_label(f, cfg.nonterminal_name(n as u32));
                f
            })
            .collect();

        for (n, &fwd) in nts.iter().enumerate() {
            let mut alternatives: Vec<NodeId> = Vec::new();
            for &pi in cfg.productions_of(n as u32) {
                let p = &cfg.productions()[pi];
                let parts: Vec<NodeId> = p
                    .rhs
                    .iter()
                    .map(|s| match s {
                        Symbol::T(t) => lang.term_node(term_ids[*t as usize]),
                        Symbol::N(m) => nts[*m as usize],
                    })
                    .collect();
                let body = lang.seq(&parts);
                // A *structured* production label (not an opaque closure):
                // symbolically evaluable, so forests normalize to the same
                // canonical packed form every backend's SPPF builder emits.
                let node =
                    lang.reduce(body, Reduce::label(cfg.nonterminal_name(p.lhs), parts.len()));
                alternatives.push(node);
            }
            let body = lang.alts(&alternatives);
            lang.define(fwd, body);
        }

        let start = nts[cfg.start() as usize];
        let term_names =
            (0..cfg.terminal_count()).map(|t| cfg.terminal_name(t as u32).to_string()).collect();
        Compiled { lang, start, term_ids, term_by_name, term_names }
    }

    /// Every terminal kind name of the grammar, in CFG index order — the
    /// candidate alphabet error recovery probes derivatives against.
    pub fn terminal_names(&self) -> &[String] {
        &self.term_names
    }

    /// Creates a token of the named terminal kind, or `None` if the kind is
    /// not part of this grammar.
    pub fn token(&mut self, kind: &str, lexeme: &str) -> Option<Token> {
        let id = *self.term_by_name.get(kind)?;
        Some(self.lang.token(id, lexeme))
    }

    /// The engine terminal for a CFG terminal index.
    pub fn term_id(&self, t: u32) -> TermId {
        self.term_ids[t as usize]
    }

    /// Converts a lexer output stream into engine tokens.
    ///
    /// # Errors
    ///
    /// [`UnknownTerminal`] if a lexeme kind is not a grammar terminal.
    pub fn tokens_from_lexemes(
        &mut self,
        lexemes: &[pwd_lex::Lexeme],
    ) -> Result<Vec<Token>, UnknownTerminal> {
        lexemes
            .iter()
            .enumerate()
            .map(|(i, l)| {
                self.token(&l.kind, &l.text)
                    .ok_or_else(|| UnknownTerminal { kind: l.kind.clone(), position: i })
            })
            .collect()
    }

    /// Convenience: recognize a lexeme stream.
    ///
    /// # Errors
    ///
    /// Engine errors from [`Language::recognize`]; unknown terminals are
    /// reported as `Ok(false)` would be wrong, so they surface as
    /// [`PwdError::Rejected`] at the offending position.
    pub fn recognize_lexemes(&mut self, lexemes: &[pwd_lex::Lexeme]) -> Result<bool, PwdError> {
        match self.tokens_from_lexemes(lexemes) {
            Ok(toks) => self.lang.recognize(self.start, &toks),
            Err(e) => Err(PwdError::Rejected { position: e.position, token: None }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::CfgBuilder;
    use pwd_core::EnumLimits;

    fn arith() -> Cfg {
        let mut g = CfgBuilder::new("E");
        g.terminals(&["+", "*", "(", ")", "NUM"]);
        g.rule("E", &["E", "+", "T"]);
        g.rule("E", &["T"]);
        g.rule("T", &["T", "*", "F"]);
        g.rule("T", &["F"]);
        g.rule("F", &["(", "E", ")"]);
        g.rule("F", &["NUM"]);
        g.build().unwrap()
    }

    fn toks(c: &mut Compiled, spec: &str) -> Vec<Token> {
        // spec: space-separated "kind" or "kind:lexeme"
        spec.split_whitespace()
            .map(|s| {
                let (kind, lex) = match s.split_once(':') {
                    Some((k, l)) => (k, l),
                    None => (s, s),
                };
                c.token(kind, lex).unwrap_or_else(|| panic!("unknown terminal {kind}"))
            })
            .collect()
    }

    #[test]
    fn arithmetic_recognition() {
        let mut c = Compiled::compile(&arith(), ParserConfig::improved());
        let good = toks(&mut c, "NUM:1 + NUM:2 * NUM:3");
        assert!(c.lang.recognize(c.start, &good).unwrap());
        c.lang.reset();
        let bad = toks(&mut c, "NUM:1 + *");
        assert!(!c.lang.recognize(c.start, &bad).unwrap());
    }

    #[test]
    fn arithmetic_tree_respects_precedence() {
        let mut c = Compiled::compile(&arith(), ParserConfig::improved());
        let input = toks(&mut c, "NUM:1 + NUM:2 * NUM:3");
        let start = c.start;
        let tree = c.lang.parse_unique(start, &input).unwrap().expect("unambiguous");
        // E → E + T with the T containing the multiplication.
        let s = tree.to_string();
        assert_eq!(s, "(E (E (T (F 1))) + (T (T (F 2)) * (F 3)))");
    }

    #[test]
    fn epsilon_productions_compile() {
        let mut g = CfgBuilder::new("S");
        g.terminal("a");
        g.rule("S", &["a", "S"]);
        g.rule("S", &[]);
        let mut c = Compiled::compile(&g.build().unwrap(), ParserConfig::improved());
        let start = c.start;
        let empty: Vec<Token> = Vec::new();
        assert!(c.lang.recognize(start, &empty).unwrap());
        c.lang.reset();
        let input = toks(&mut c, "a a a");
        let tree = c.lang.parse_unique(start, &input).unwrap().expect("unambiguous");
        assert_eq!(tree.to_string(), "(S a (S a (S a (S))))");
    }

    #[test]
    fn ambiguous_grammar_counts() {
        let mut g = CfgBuilder::new("S");
        g.terminal("a");
        g.rule("S", &["S", "S"]);
        g.rule("S", &["a"]);
        let mut c = Compiled::compile(&g.build().unwrap(), ParserConfig::improved());
        let start = c.start;
        let input = toks(&mut c, "a a a a");
        assert_eq!(c.lang.count_parses(start, &input).unwrap(), pwd_core::TreeCount::Finite(5));
    }

    #[test]
    fn ambiguous_trees_are_distinct() {
        let mut g = CfgBuilder::new("E");
        g.terminals(&["+", "n"]);
        g.rule("E", &["E", "+", "E"]);
        g.rule("E", &["n"]);
        let mut c = Compiled::compile(&g.build().unwrap(), ParserConfig::improved());
        let start = c.start;
        let input = toks(&mut c, "n + n + n");
        let trees = c.lang.parse_trees(start, &input, EnumLimits::default()).unwrap();
        assert_eq!(trees.len(), 2, "left- and right-association");
        let strs: std::collections::HashSet<String> = trees.iter().map(|t| t.to_string()).collect();
        assert_eq!(strs.len(), 2);
    }

    #[test]
    fn unknown_terminal_reported() {
        let mut c = Compiled::compile(&arith(), ParserConfig::improved());
        assert!(c.token("NOPE", "x").is_none());
        let lexemes = vec![pwd_lex::Lexeme { kind: "NOPE".into(), text: "x".into(), offset: 0 }];
        let err = c.tokens_from_lexemes(&lexemes).unwrap_err();
        assert_eq!(err.kind, "NOPE");
        assert_eq!(err.position, 0);
    }

    #[test]
    fn lexer_to_parser_pipeline() {
        let lexer = pwd_lex::LexerBuilder::new()
            .rule("NUM", r"[0-9]+")
            .unwrap()
            .rule("+", r"\+")
            .unwrap()
            .rule("*", r"\*")
            .unwrap()
            .rule("(", r"\(")
            .unwrap()
            .rule(")", r"\)")
            .unwrap()
            .skip("WS", r" +")
            .unwrap()
            .build();
        let lexemes = lexer.tokenize("(1 + 2) * 3").unwrap();
        let mut c = Compiled::compile(&arith(), ParserConfig::improved());
        assert!(c.recognize_lexemes(&lexemes).unwrap());
    }
}
