//! Unambiguous, left-recursive arithmetic expressions.

use crate::cfg::{Cfg, CfgBuilder};

/// `E → E + T | E - T | T`, `T → T * F | T / F | F`,
/// `F → ( E ) | NUM | - F`.
///
/// Left recursion encodes left associativity; PWD handles it natively.
pub fn cfg() -> Cfg {
    let mut g = CfgBuilder::new("E");
    g.terminals(&["+", "-", "*", "/", "(", ")", "NUM"]);
    g.rule("E", &["E", "+", "T"]);
    g.rule("E", &["E", "-", "T"]);
    g.rule("E", &["T"]);
    g.rule("T", &["T", "*", "F"]);
    g.rule("T", &["T", "/", "F"]);
    g.rule("T", &["F"]);
    g.rule("F", &["(", "E", ")"]);
    g.rule("F", &["NUM"]);
    g.rule("F", &["-", "F"]);
    g.build().expect("arith grammar is well-formed")
}

/// A lexer matching the grammar's terminals.
pub fn lexer() -> pwd_lex::Lexer {
    pwd_lex::LexerBuilder::new()
        .rule("NUM", r"[0-9]+")
        .expect("static pattern")
        .rule("+", r"\+")
        .expect("static pattern")
        .rule("-", r"-")
        .expect("static pattern")
        .rule("*", r"\*")
        .expect("static pattern")
        .rule("/", r"/")
        .expect("static pattern")
        .rule("(", r"\(")
        .expect("static pattern")
        .rule(")", r"\)")
        .expect("static pattern")
        .skip("WS", r"[ \t\n]+")
        .expect("static pattern")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::Compiled;
    use pwd_core::ParserConfig;

    #[test]
    fn grammar_builds() {
        let g = cfg();
        assert_eq!(g.production_count(), 9);
    }

    #[test]
    fn parses_via_lexer() {
        let mut c = Compiled::compile(&cfg(), ParserConfig::improved());
        let lx = lexer();
        for (src, want) in [
            ("1+2*3", true),
            ("(1+2)*3", true),
            ("-(4/2)-1", true),
            ("1++2", false), // '+' is binary-only except unary minus
            ("()", false),
            ("1+", false),
        ] {
            let lexemes = lx.tokenize(src).unwrap();
            assert_eq!(c.recognize_lexemes(&lexemes).unwrap(), want, "{src}");
            c.lang.reset();
        }
    }
}
