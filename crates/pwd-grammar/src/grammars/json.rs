//! A JSON grammar (unambiguous, realistic nesting).

use crate::cfg::{Cfg, CfgBuilder};

/// JSON values: objects, arrays, strings, numbers, `true`/`false`/`null`.
pub fn cfg() -> Cfg {
    let mut g = CfgBuilder::new("Value");
    g.terminals(&["{", "}", "[", "]", ",", ":", "STRING", "NUMBER", "true", "false", "null"]);
    g.rule("Value", &["Object"]);
    g.rule("Value", &["Array"]);
    g.rule("Value", &["STRING"]);
    g.rule("Value", &["NUMBER"]);
    g.rule("Value", &["true"]);
    g.rule("Value", &["false"]);
    g.rule("Value", &["null"]);
    g.rule("Object", &["{", "}"]);
    g.rule("Object", &["{", "Members", "}"]);
    g.rule("Members", &["Pair"]);
    g.rule("Members", &["Pair", ",", "Members"]);
    g.rule("Pair", &["STRING", ":", "Value"]);
    g.rule("Array", &["[", "]"]);
    g.rule("Array", &["[", "Elements", "]"]);
    g.rule("Elements", &["Value"]);
    g.rule("Elements", &["Value", ",", "Elements"]);
    g.build().expect("json grammar is well-formed")
}

/// A lexer matching the grammar's terminals.
pub fn lexer() -> pwd_lex::Lexer {
    pwd_lex::LexerBuilder::new()
        .rule("true", "true")
        .expect("static pattern")
        .rule("false", "false")
        .expect("static pattern")
        .rule("null", "null")
        .expect("static pattern")
        .rule("STRING", r#""([^"\\]|\\.)*""#)
        .expect("static pattern")
        .rule("NUMBER", r"-?[0-9]+(\.[0-9]+)?([eE](\+|-)?[0-9]+)?")
        .expect("static pattern")
        .rule("{", r"\{")
        .expect("static pattern")
        .rule("}", r"\}")
        .expect("static pattern")
        .rule("[", r"\[")
        .expect("static pattern")
        .rule("]", r"\]")
        .expect("static pattern")
        .rule(",", ",")
        .expect("static pattern")
        .rule(":", ":")
        .expect("static pattern")
        .skip("WS", r"[ \t\r\n]+")
        .expect("static pattern")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::Compiled;
    use pwd_core::ParserConfig;

    #[test]
    fn parses_json_documents() {
        let mut c = Compiled::compile(&cfg(), ParserConfig::improved());
        let lx = lexer();
        for (src, want) in [
            (r#"{}"#, true),
            (r#"{"a": 1, "b": [true, null, -2.5e3]}"#, true),
            (r#"[[[]]]"#, true),
            (r#"{"nested": {"deep": {"x": "y"}}}"#, true),
            (r#"{,}"#, false),
            (r#"[1, ]"#, false),
            (r#"{"a" 1}"#, false),
        ] {
            let lexemes = lx.tokenize(src).unwrap();
            assert_eq!(c.recognize_lexemes(&lexemes).unwrap(), want, "{src}");
            c.lang.reset();
        }
    }

    #[test]
    fn json_parse_is_unambiguous() {
        let mut c = Compiled::compile(&cfg(), ParserConfig::improved());
        let lx = lexer();
        let lexemes = lx.tokenize(r#"{"a": [1, 2], "b": {"c": true}}"#).unwrap();
        let toks = c.tokens_from_lexemes(&lexemes).unwrap();
        let start = c.start;
        assert_eq!(c.lang.count_parses(start, &toks).unwrap(), pwd_core::TreeCount::Finite(1));
    }
}
