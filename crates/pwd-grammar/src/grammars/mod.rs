//! The benchmark grammar corpus.
//!
//! * [`arith`] — unambiguous, left-recursive arithmetic (quickstart-sized);
//! * [`json`] — a JSON grammar (realistic, unambiguous);
//! * [`ambiguous`] — `S → S S | a` and the doubly ambiguous expression
//!   grammar (stress tests for forests and the cubic bound);
//! * [`worst_case`] — the paper's Figure-5 grammar `L = (L ◦ L) ∪ c`;
//! * [`python`] — the Python-subset grammar standing in for the paper's
//!   722-production Python 3.4 grammar (§4.1);
//! * [`pl0`] — a PL/0-style teaching language, the lexeme-diversity
//!   workload for the memo-keying benchmarks.

pub mod ambiguous;
pub mod arith;
pub mod json;
pub mod pl0;
pub mod python;
pub mod worst_case;
