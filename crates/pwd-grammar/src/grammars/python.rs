//! A Python-subset grammar: the stand-in for the paper's 722-production
//! Python 3.4 CFG (§4.1).
//!
//! Modeled directly on the Python 3.4 reference grammar, CFG-ized the same
//! way the paper did for Bison/`parser-tools` compatibility: EBNF repetition
//! becomes left-recursive chain nonterminals, optional clauses become
//! enumerated alternatives. It covers statements (assignments, flow control,
//! imports, assertions), compound statements (if/elif/else, while/for with
//! else, try/except/finally, with, def, class), the full
//! operator-precedence expression ladder (`or` down to trailers and atoms),
//! comprehensions, lambdas, and display literals. ~200 productions — the
//! same structural character (deep unary chains, nullable tails, shared
//! subexpressions) that drives PWD's node-creation behaviour on the real
//! grammar, at about a quarter of the production count.
//!
//! Token kinds match [`pwd_lex::tokenize_python`]: `NAME NUMBER STRING
//! NEWLINE INDENT DEDENT ENDMARKER`, keywords spelled as themselves, and
//! operator/delimiter tokens spelled as their text.

use crate::cfg::{Cfg, CfgBuilder};

/// Builds the Python-subset grammar with start symbol `file_input`.
pub fn cfg() -> Cfg {
    let mut g = CfgBuilder::new("file_input");
    // Layout and literal terminals.
    g.terminals(&["NAME", "NUMBER", "STRING", "NEWLINE", "INDENT", "DEDENT", "ENDMARKER"]);
    // Keywords (as their own token kinds, matching the tokenizer).
    g.terminals(&[
        "False", "None", "True", "and", "as", "assert", "break", "class", "continue", "def", "del",
        "elif", "else", "except", "finally", "for", "from", "global", "if", "import", "in", "is",
        "lambda", "nonlocal", "not", "or", "pass", "raise", "return", "try", "while", "with",
        "yield",
    ]);
    // Operators and delimiters.
    g.terminals(&[
        "**=", "//=", ">>=", "<<=", "==", "!=", "<=", ">=", "->", "**", "//", "<<", ">>", "+=",
        "-=", "*=", "/=", "%=", "&=", "|=", "^=", "+", "-", "*", "/", "%", "@", "&", "|", "^", "~",
        "<", ">", "(", ")", "[", "]", "{", "}", ",", ":", ".", ";", "=",
    ]);

    // ----- module structure -----
    g.rule("file_input", &["stmts", "ENDMARKER"]);
    g.rule("stmts", &[]);
    g.rule("stmts", &["stmts", "stmt"]);
    g.rule("stmt", &["simple_stmt"]);
    g.rule("stmt", &["compound_stmt"]);
    g.rule("simple_stmt", &["small_stmts", "NEWLINE"]);
    g.rule("small_stmts", &["small_stmt"]);
    g.rule("small_stmts", &["small_stmts", ";", "small_stmt"]);
    for alt in [
        "expr_stmt",
        "del_stmt",
        "pass_stmt",
        "flow_stmt",
        "import_stmt",
        "global_stmt",
        "assert_stmt",
    ] {
        g.rule("small_stmt", &[alt]);
    }

    // ----- simple statements -----
    g.rule("expr_stmt", &["testlist"]);
    g.rule("expr_stmt", &["testlist", "augassign", "testlist"]);
    g.rule("expr_stmt", &["testlist", "=", "assign_rhs"]);
    g.rule("assign_rhs", &["testlist"]);
    g.rule("assign_rhs", &["testlist", "=", "assign_rhs"]);
    for op in ["+=", "-=", "*=", "/=", "//=", "%=", "**=", ">>=", "<<=", "&=", "|=", "^="] {
        g.rule("augassign", &[op]);
    }
    g.rule("del_stmt", &["del", "testlist"]);
    g.rule("pass_stmt", &["pass"]);
    g.rule("flow_stmt", &["break"]);
    g.rule("flow_stmt", &["continue"]);
    g.rule("flow_stmt", &["return_stmt"]);
    g.rule("flow_stmt", &["raise_stmt"]);
    g.rule("flow_stmt", &["yield_expr"]);
    g.rule("return_stmt", &["return"]);
    g.rule("return_stmt", &["return", "testlist"]);
    g.rule("raise_stmt", &["raise"]);
    g.rule("raise_stmt", &["raise", "test"]);
    g.rule("raise_stmt", &["raise", "test", "from", "test"]);
    g.rule("yield_expr", &["yield"]);
    g.rule("yield_expr", &["yield", "testlist"]);
    g.rule("import_stmt", &["import", "dotted_as_names"]);
    g.rule("import_stmt", &["from", "dotted_name", "import", "import_as_names"]);
    g.rule("import_stmt", &["from", "dotted_name", "import", "(", "import_as_names", ")"]);
    g.rule("import_stmt", &["from", "dotted_name", "import", "*"]);
    g.rule("dotted_name", &["NAME"]);
    g.rule("dotted_name", &["dotted_name", ".", "NAME"]);
    g.rule("dotted_as_names", &["dotted_as_name"]);
    g.rule("dotted_as_names", &["dotted_as_names", ",", "dotted_as_name"]);
    g.rule("dotted_as_name", &["dotted_name"]);
    g.rule("dotted_as_name", &["dotted_name", "as", "NAME"]);
    g.rule("import_as_names", &["import_as_name"]);
    g.rule("import_as_names", &["import_as_names", ",", "import_as_name"]);
    g.rule("import_as_name", &["NAME"]);
    g.rule("import_as_name", &["NAME", "as", "NAME"]);
    g.rule("global_stmt", &["global", "name_list"]);
    g.rule("global_stmt", &["nonlocal", "name_list"]);
    g.rule("name_list", &["NAME"]);
    g.rule("name_list", &["name_list", ",", "NAME"]);
    g.rule("assert_stmt", &["assert", "test"]);
    g.rule("assert_stmt", &["assert", "test", ",", "test"]);

    // ----- compound statements -----
    for alt in ["if_stmt", "while_stmt", "for_stmt", "try_stmt", "with_stmt", "funcdef", "classdef"]
    {
        g.rule("compound_stmt", &[alt]);
    }
    g.rule("if_stmt", &["if", "test", ":", "suite"]);
    g.rule("if_stmt", &["if", "test", ":", "suite", "else_block"]);
    g.rule("if_stmt", &["if", "test", ":", "suite", "elif_chain"]);
    g.rule("if_stmt", &["if", "test", ":", "suite", "elif_chain", "else_block"]);
    g.rule("elif_chain", &["elif_clause"]);
    g.rule("elif_chain", &["elif_chain", "elif_clause"]);
    g.rule("elif_clause", &["elif", "test", ":", "suite"]);
    g.rule("else_block", &["else", ":", "suite"]);
    g.rule("while_stmt", &["while", "test", ":", "suite"]);
    g.rule("while_stmt", &["while", "test", ":", "suite", "else_block"]);
    g.rule("for_stmt", &["for", "target_list", "in", "testlist", ":", "suite"]);
    g.rule("for_stmt", &["for", "target_list", "in", "testlist", ":", "suite", "else_block"]);
    g.rule("try_stmt", &["try", ":", "suite", "except_chain"]);
    g.rule("try_stmt", &["try", ":", "suite", "except_chain", "else_block"]);
    g.rule("try_stmt", &["try", ":", "suite", "except_chain", "finally_block"]);
    g.rule("try_stmt", &["try", ":", "suite", "except_chain", "else_block", "finally_block"]);
    g.rule("try_stmt", &["try", ":", "suite", "finally_block"]);
    g.rule("except_chain", &["except_clause"]);
    g.rule("except_chain", &["except_chain", "except_clause"]);
    g.rule("except_clause", &["except", ":", "suite"]);
    g.rule("except_clause", &["except", "test", ":", "suite"]);
    g.rule("except_clause", &["except", "test", "as", "NAME", ":", "suite"]);
    g.rule("finally_block", &["finally", ":", "suite"]);
    g.rule("with_stmt", &["with", "with_items", ":", "suite"]);
    g.rule("with_items", &["with_item"]);
    g.rule("with_items", &["with_items", ",", "with_item"]);
    g.rule("with_item", &["test"]);
    g.rule("with_item", &["test", "as", "target"]);
    // Decorated definitions (Python 3.4 `decorated: decorators (classdef|funcdef)`).
    g.rule("compound_stmt", &["decorated"]);
    g.rule("decorated", &["decorators", "funcdef"]);
    g.rule("decorated", &["decorators", "classdef"]);
    g.rule("decorators", &["decorator"]);
    g.rule("decorators", &["decorators", "decorator"]);
    g.rule("decorator", &["@", "dotted_name", "NEWLINE"]);
    g.rule("decorator", &["@", "dotted_name", "(", ")", "NEWLINE"]);
    g.rule("decorator", &["@", "dotted_name", "(", "arg_list", ")", "NEWLINE"]);
    g.rule("funcdef", &["def", "NAME", "parameters", ":", "suite"]);
    g.rule("funcdef", &["def", "NAME", "parameters", "->", "test", ":", "suite"]);
    g.rule("parameters", &["(", ")"]);
    g.rule("parameters", &["(", "param_list", ")"]);
    g.rule("param_list", &["param"]);
    g.rule("param_list", &["param_list", ",", "param"]);
    g.rule("param", &["NAME"]);
    g.rule("param", &["NAME", "=", "test"]);
    g.rule("param", &["NAME", ":", "test"]);
    g.rule("param", &["*", "NAME"]);
    g.rule("param", &["**", "NAME"]);
    g.rule("classdef", &["class", "NAME", ":", "suite"]);
    g.rule("classdef", &["class", "NAME", "(", ")", ":", "suite"]);
    g.rule("classdef", &["class", "NAME", "(", "arg_list", ")", ":", "suite"]);
    g.rule("suite", &["simple_stmt"]);
    g.rule("suite", &["NEWLINE", "INDENT", "stmt_seq", "DEDENT"]);
    g.rule("stmt_seq", &["stmt"]);
    g.rule("stmt_seq", &["stmt_seq", "stmt"]);

    // ----- expressions: the precedence ladder -----
    g.rule("test", &["or_test"]);
    g.rule("test", &["or_test", "if", "or_test", "else", "test"]);
    g.rule("test", &["lambdef"]);
    g.rule("lambdef", &["lambda", ":", "test"]);
    g.rule("lambdef", &["lambda", "param_list", ":", "test"]);
    g.rule("or_test", &["and_test"]);
    g.rule("or_test", &["or_test", "or", "and_test"]);
    g.rule("and_test", &["not_test"]);
    g.rule("and_test", &["and_test", "and", "not_test"]);
    g.rule("not_test", &["not", "not_test"]);
    g.rule("not_test", &["comparison"]);
    g.rule("comparison", &["expr"]);
    for op in ["<", ">", "==", ">=", "<=", "!="] {
        g.rule("comparison", &["comparison", op, "expr"]);
    }
    g.rule("comparison", &["comparison", "in", "expr"]);
    g.rule("comparison", &["comparison", "not", "in", "expr"]);
    g.rule("comparison", &["comparison", "is", "expr"]);
    g.rule("comparison", &["comparison", "is", "not", "expr"]);
    g.rule("expr", &["xor_expr"]);
    g.rule("expr", &["expr", "|", "xor_expr"]);
    g.rule("xor_expr", &["and_expr"]);
    g.rule("xor_expr", &["xor_expr", "^", "and_expr"]);
    g.rule("and_expr", &["shift_expr"]);
    g.rule("and_expr", &["and_expr", "&", "shift_expr"]);
    g.rule("shift_expr", &["arith_expr"]);
    g.rule("shift_expr", &["shift_expr", "<<", "arith_expr"]);
    g.rule("shift_expr", &["shift_expr", ">>", "arith_expr"]);
    g.rule("arith_expr", &["term"]);
    g.rule("arith_expr", &["arith_expr", "+", "term"]);
    g.rule("arith_expr", &["arith_expr", "-", "term"]);
    g.rule("term", &["factor"]);
    for op in ["*", "/", "%", "//"] {
        g.rule("term", &["term", op, "factor"]);
    }
    g.rule("factor", &["power"]);
    for op in ["+", "-", "~"] {
        g.rule("factor", &[op, "factor"]);
    }
    g.rule("power", &["atom_expr"]);
    g.rule("power", &["atom_expr", "**", "factor"]);
    g.rule("atom_expr", &["atom"]);
    g.rule("atom_expr", &["atom_expr", "trailer"]);
    g.rule("trailer", &["(", ")"]);
    g.rule("trailer", &["(", "arg_list", ")"]);
    g.rule("trailer", &["[", "subscript_list", "]"]);
    g.rule("trailer", &[".", "NAME"]);
    g.rule("arg_list", &["argument"]);
    g.rule("arg_list", &["arg_list", ",", "argument"]);
    g.rule("argument", &["test"]);
    g.rule("argument", &["NAME", "=", "test"]);
    g.rule("argument", &["*", "test"]);
    g.rule("argument", &["**", "test"]);
    g.rule("subscript_list", &["subscript"]);
    g.rule("subscript_list", &["subscript_list", ",", "subscript"]);
    g.rule("subscript", &["test"]);
    g.rule("subscript", &["maybe_test", ":", "maybe_test"]);
    g.rule("subscript", &["maybe_test", ":", "maybe_test", ":", "maybe_test"]);
    g.rule("maybe_test", &[]);
    g.rule("maybe_test", &["test"]);

    // ----- atoms -----
    for alt in [&["NAME"][..], &["NUMBER"], &["strings"], &["True"], &["False"], &["None"]] {
        g.rule("atom", alt);
    }
    g.rule("atom", &["(", ")"]);
    g.rule("atom", &["(", "testlist", ")"]);
    g.rule("atom", &["(", "comprehension", ")"]);
    g.rule("atom", &["[", "]"]);
    g.rule("atom", &["[", "testlist", "]"]);
    g.rule("atom", &["[", "comprehension", "]"]);
    g.rule("atom", &["{", "}"]);
    g.rule("atom", &["{", "dict_items", "}"]);
    g.rule("atom", &["{", "testlist", "}"]);
    g.rule("strings", &["STRING"]);
    g.rule("strings", &["strings", "STRING"]);
    g.rule("comprehension", &["test", "comp_for"]);
    g.rule("comp_for", &["for", "target_list", "in", "or_test"]);
    g.rule("comp_for", &["for", "target_list", "in", "or_test", "comp_iter"]);
    g.rule("comp_iter", &["comp_for"]);
    g.rule("comp_iter", &["comp_if"]);
    g.rule("comp_if", &["if", "or_test"]);
    g.rule("comp_if", &["if", "or_test", "comp_iter"]);
    g.rule("dict_items", &["dict_item"]);
    g.rule("dict_items", &["dict_items", ",", "dict_item"]);
    g.rule("dict_item", &["test", ":", "test"]);

    // ----- lists and targets -----
    g.rule("testlist", &["test"]);
    g.rule("testlist", &["testlist", ",", "test"]);
    g.rule("target_list", &["target"]);
    g.rule("target_list", &["target_list", ",", "target"]);
    g.rule("target", &["atom_expr"]);
    // Starred assignment targets: `a, *rest = xs` (PEP 3132).
    g.rule("target", &["*", "atom_expr"]);

    g.build().expect("python grammar is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::Compiled;
    use pwd_core::ParserConfig;
    use pwd_lex::tokenize_python;

    fn recognizes(src: &str) -> bool {
        let mut c = Compiled::compile(&cfg(), ParserConfig::improved());
        let lexemes = tokenize_python(src).expect("tokenizes");
        c.recognize_lexemes(&lexemes).expect("parses without engine error")
    }

    #[test]
    fn grammar_size_is_substantial() {
        let g = cfg();
        assert!(
            g.production_count() >= 150,
            "want a grammar in the Python-subset class, got {} productions",
            g.production_count()
        );
    }

    #[test]
    fn simple_statements() {
        assert!(recognizes("x = 1\n"));
        assert!(recognizes("x, y = 1, 2\n"));
        assert!(recognizes("x += f(1, 2) * 3\n"));
        assert!(recognizes("pass\n"));
        assert!(recognizes("del x\n"));
        assert!(recognizes("assert x == 1, 'message'\n"));
        assert!(recognizes("import os, sys as system\n"));
        assert!(recognizes("from os.path import join as j, split\n"));
        assert!(recognizes("global a, b\n"));
        assert!(recognizes("x = 1; y = 2; z = x + y\n"));
    }

    #[test]
    fn compound_statements() {
        assert!(recognizes("if x:\n    pass\nelif y:\n    pass\nelse:\n    pass\n"));
        assert!(recognizes("while x > 0:\n    x -= 1\nelse:\n    pass\n"));
        assert!(recognizes("for i in range(10):\n    print(i)\n"));
        assert!(recognizes(
            "try:\n    f()\nexcept ValueError as e:\n    pass\nfinally:\n    g()\n"
        ));
        assert!(recognizes("with open('f') as fh:\n    data = fh.read()\n"));
        assert!(recognizes("def f(a, b=1, *args, **kw) -> int:\n    return a + b\n"));
        assert!(recognizes("class C(Base):\n    def m(self):\n        return self.x\n"));
    }

    #[test]
    fn expressions() {
        assert!(recognizes("x = a or b and not c\n"));
        assert!(recognizes("x = 1 < 2 <= 3 != 4\n"));
        assert!(recognizes("x = a | b ^ c & d << e + f * g ** h\n"));
        assert!(recognizes("x = y if z else w\n"));
        assert!(recognizes("f = lambda a, b: a + b\n"));
        assert!(recognizes("x = a.b.c(1)[2:3].d\n"));
        assert!(recognizes("x = [i * 2 for i in y if i > 0]\n"));
        // Dict comprehensions are not in the subset: exercised for
        // tokenizer coverage, verdict deliberately unasserted.
        let _ = recognizes("d = {'k': v for k in ks}\n");
        assert!(recognizes("d = {'a': 1, 'b': 2}\n"));
        assert!(recognizes("s = {1, 2, 3}\n"));
        assert!(recognizes("t = (1, 2, 3)\n"));
        assert!(recognizes("x = 'a' 'b' 'c'\n"), "implicit string concatenation");
        assert!(recognizes("x = a in b\n"));
        assert!(recognizes("x = a not in b\n"));
        assert!(recognizes("x = a is not b\n"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(!recognizes("x = = 1\n"));
        assert!(!recognizes("def f(:\n    pass\n"));
        assert!(!recognizes("if :\n    pass\n"));
        assert!(!recognizes("return\n    x\n"));
        assert!(!recognizes("x = (1 + \n")); // note: tokenizer joins; missing ')' then
    }

    #[test]
    fn extended_constructs() {
        assert!(recognizes("@deco\ndef f():\n    pass\n"));
        assert!(recognizes("@mod.deco(1, k=2)\nclass C:\n    pass\n"));
        assert!(recognizes("@a\n@b.c\n@d()\ndef g():\n    pass\n"));
        assert!(recognizes("nonlocal x, y\n"));
        assert!(recognizes("from os.path import (join as j, split)\n"));
        assert!(!recognizes("@\ndef f():\n    pass\n"));
        assert!(!recognizes("@deco def f():\n    pass\n"));
    }

    #[test]
    fn whole_module() {
        let src = r#"
import os
from sys import argv as args

def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)

class Counter:
    def __init__(self, start=0):
        self.value = start

    def bump(self, by=1):
        self.value += by
        return self.value

for i in range(10):
    if i % 2 == 0:
        print(fib(i))
    else:
        print(i)
"#;
        assert!(recognizes(src));
    }
}
