//! The paper's Figure-5 worst case: `L = (L ◦ L) ∪ c`, where `c` accepts
//! any token. Exhibits the `O(G·n³)` node-construction bound.

use crate::cfg::{Cfg, CfgBuilder};
use pwd_core::{Language, NodeId, ParserConfig, Token};

/// CFG form (for the Earley/GLR baselines): `L → L L | c`.
pub fn cfg() -> Cfg {
    let mut g = CfgBuilder::new("L");
    g.terminal("c");
    g.rule("L", &["L", "L"]);
    g.rule("L", &["c"]);
    g.build().expect("well-formed")
}

/// Direct expression-graph form with the paper's Figure-5 labels: the
/// `∪` node is `L`, the `◦` node `M`, the token node `N`.
///
/// Returns `(lang, L, tokens c1…cn)` with `n = input_len` distinct tokens
/// (the paper's worst case assumes every token is unique).
pub fn language(config: ParserConfig, input_len: usize) -> (Language, NodeId, Vec<Token>) {
    let mut lang = Language::new(config);
    let c = lang.terminal("c");
    let tc = lang.term_node(c);
    lang.set_label(tc, "N");
    let l = lang.forward();
    let ll = lang.cat(l, l);
    lang.set_label(ll, "M");
    let body = lang.alt(ll, tc);
    lang.set_label(body, "L");
    lang.define(l, body);
    let toks = (1..=input_len).map(|i| lang.token(c, &format!("c{i}"))).collect();
    (lang, l, toks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::Compiled;

    #[test]
    fn both_forms_agree() {
        for n in 1..=6usize {
            let (mut lang, l, toks) = language(ParserConfig::improved(), n);
            let direct = lang.count_parses(l, &toks).unwrap();

            let mut c = Compiled::compile(&cfg(), ParserConfig::improved());
            let ctoks: Vec<_> = (1..=n).map(|i| c.token("c", &format!("c{i}")).unwrap()).collect();
            let start = c.start;
            let compiled = c.lang.count_parses(start, &ctoks).unwrap();
            assert_eq!(direct, compiled, "n={n}");
        }
    }

    #[test]
    fn rejects_empty() {
        let (mut lang, l, _) = language(ParserConfig::improved(), 0);
        assert!(!lang.recognize(l, &[]).unwrap());
    }
}
