//! A PL/0-superset teaching language (Wirth's compiler-course classic plus
//! the extensions didactic compilers bolt on: `repeat`/`read`/`write`
//! statements, call arguments, indexing, and a full operator-precedence
//! chain).
//!
//! This is the lexeme-diversity workload: realistic programs in it are
//! dominated by *distinct* identifiers and numeric literals, so under
//! value-keyed memoization nearly every operand token is a fresh memo key
//! and the engine re-walks the expression grammar per token. The
//! `lexeme_diverse` bench drives this grammar with a mostly-unique
//! identifier corpus to measure exactly that effect (and the class-keyed
//! fix).

use crate::cfg::{Cfg, CfgBuilder};

/// The PL/0-superset grammar: `const`/`var` declarations, nested
/// `procedure`s, nine statement forms, relational conditions, and a
/// five-level expression chain (`Sum → Prod → Unary → Postfix → Atom`) with
/// call and index postfix operators.
///
/// Unambiguous; lists use right-recursive rest rules, and unary sign lives
/// only in `Unary` (no top-level sign rule, which would make `-x` doubly
/// derivable).
pub fn cfg() -> Cfg {
    let mut g = CfgBuilder::new("Program");
    g.terminals(&[
        "const",
        "var",
        "procedure",
        "call",
        "begin",
        "end",
        "if",
        "then",
        "while",
        "do",
        "repeat",
        "until",
        "read",
        "write",
        "odd",
        "mod",
        "div",
        "ID",
        "NUM",
        ":=",
        ";",
        ",",
        ".",
        "=",
        "#",
        "<",
        "<=",
        ">",
        ">=",
        "+",
        "-",
        "*",
        "/",
        "(",
        ")",
        "[",
        "]",
    ]);
    g.rule("Program", &["Block", "."]);
    g.rule("Block", &["Consts", "Vars", "Procs", "Stmt"]);
    g.rule("Consts", &[]);
    g.rule("Consts", &["const", "ConstDecl", "ConstRest", ";"]);
    g.rule("ConstDecl", &["ID", "=", "NUM"]);
    g.rule("ConstRest", &[]);
    g.rule("ConstRest", &[",", "ConstDecl", "ConstRest"]);
    g.rule("Vars", &[]);
    g.rule("Vars", &["var", "ID", "VarRest", ";"]);
    g.rule("VarRest", &[]);
    g.rule("VarRest", &[",", "ID", "VarRest"]);
    g.rule("Procs", &[]);
    g.rule("Procs", &["procedure", "ID", ";", "Block", ";", "Procs"]);
    g.rule("Stmt", &[]);
    g.rule("Stmt", &["ID", ":=", "Expr"]);
    g.rule("Stmt", &["call", "ID"]);
    g.rule("Stmt", &["begin", "Stmt", "StmtRest", "end"]);
    g.rule("Stmt", &["if", "Cond", "then", "Stmt"]);
    g.rule("Stmt", &["while", "Cond", "do", "Stmt"]);
    g.rule("Stmt", &["repeat", "Stmt", "until", "Cond"]);
    g.rule("Stmt", &["read", "ID"]);
    g.rule("Stmt", &["write", "Expr"]);
    g.rule("StmtRest", &[]);
    g.rule("StmtRest", &[";", "Stmt", "StmtRest"]);
    g.rule("Cond", &["odd", "Expr"]);
    for rel in ["=", "#", "<", "<=", ">", ">="] {
        g.rule("Cond", &["Expr", rel, "Expr"]);
    }
    // The precedence chain. `Expr` is an alias level so conditions and
    // statements read naturally.
    g.rule("Expr", &["Sum"]);
    g.rule("Sum", &["Prod", "SumRest"]);
    g.rule("SumRest", &[]);
    g.rule("SumRest", &["+", "Prod", "SumRest"]);
    g.rule("SumRest", &["-", "Prod", "SumRest"]);
    g.rule("Prod", &["Unary", "ProdRest"]);
    g.rule("ProdRest", &[]);
    for op in ["*", "/", "mod", "div"] {
        g.rule("ProdRest", &[op, "Unary", "ProdRest"]);
    }
    g.rule("Unary", &["Postfix"]);
    g.rule("Unary", &["-", "Unary"]);
    g.rule("Unary", &["+", "Unary"]);
    g.rule("Postfix", &["Atom", "PostRest"]);
    g.rule("PostRest", &[]);
    g.rule("PostRest", &["[", "Expr", "]", "PostRest"]);
    g.rule("PostRest", &["(", "ArgList", ")", "PostRest"]);
    g.rule("ArgList", &[]);
    g.rule("ArgList", &["Expr", "ArgRest"]);
    g.rule("ArgRest", &[]);
    g.rule("ArgRest", &[",", "Expr", "ArgRest"]);
    g.rule("Atom", &["ID"]);
    g.rule("Atom", &["NUM"]);
    g.rule("Atom", &["(", "Expr", ")"]);
    g.build().expect("PL/0 grammar is well-formed")
}

/// A lexer matching the grammar's terminals (keywords before `ID`, so ties
/// go to the keyword; maximal munch keeps `constant1` an identifier).
pub fn lexer() -> pwd_lex::Lexer {
    let mut b = pwd_lex::LexerBuilder::new();
    for kw in [
        "const",
        "var",
        "procedure",
        "call",
        "begin",
        "end",
        "if",
        "then",
        "while",
        "do",
        "repeat",
        "until",
        "read",
        "write",
        "odd",
        "mod",
        "div",
    ] {
        b = b.rule(kw, kw).expect("static pattern");
    }
    for (name, pat) in [
        (":=", r":="),
        (";", r";"),
        (",", r","),
        (".", r"\."),
        ("<=", r"<="),
        (">=", r">="),
        ("<", r"<"),
        (">", r">"),
        ("=", r"="),
        ("#", r"#"),
        ("+", r"\+"),
        ("-", r"-"),
        ("*", r"\*"),
        ("/", r"/"),
        ("(", r"\("),
        (")", r"\)"),
        ("[", r"\["),
        ("]", r"\]"),
    ] {
        b = b.rule(name, pat).expect("static pattern");
    }
    b.rule("ID", r"[a-z][a-z0-9]*")
        .expect("static pattern")
        .rule("NUM", r"[0-9]+")
        .expect("static pattern")
        .skip("WS", r"[ \t\n]+")
        .expect("static pattern")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::Compiled;
    use pwd_core::ParserConfig;

    #[test]
    fn grammar_builds() {
        let g = cfg();
        assert!(g.production_count() >= 45);
    }

    #[test]
    fn parses_classic_programs() {
        let mut c = Compiled::compile(&cfg(), ParserConfig::improved());
        let lx = lexer();
        for (src, want) in [
            ("begin x1 := 1; x2 := x1 + 2 end.", true),
            ("var a, b; begin a := 1; b := a * (a + 2) end.", true),
            ("const k = 7; var n; while n > k do n := n - 1.", true),
            ("procedure p; call q; begin call p end.", true),
            ("if odd x then y := -y.", true),
            ("repeat read x until x # 0.", true),
            ("write f(x, g[i] + 1) mod 2.", true),
            ("x := a[i][j] * h() div -3.", true),
            (".", true),                 // the empty program: empty block, then '.'
            ("begin x := 1 end", false), // missing final '.'
            ("x := .", false),
            ("if x then y := 1.", false), // condition needs a relation or odd
            ("x := a + * b.", false),
        ] {
            let lexemes = lx.tokenize(src).unwrap();
            assert_eq!(c.recognize_lexemes(&lexemes).unwrap(), want, "{src}");
            c.lang.reset();
        }
    }

    #[test]
    fn expression_chain_is_unambiguous() {
        let mut c = Compiled::compile(&cfg(), ParserConfig::improved());
        let lx = lexer();
        for src in ["x := -a + b * c[i] - f(1, 2) div 3.", "write (a) (b) [c].", "x := +-+1."] {
            let lexemes = lx.tokenize(src).unwrap();
            let toks = c.tokens_from_lexemes(&lexemes).unwrap();
            let start = c.start;
            assert_eq!(
                c.lang.count_parses(start, &toks).unwrap(),
                pwd_core::TreeCount::Finite(1),
                "exactly one parse for {src}"
            );
            c.lang.reset();
        }
    }

    #[test]
    fn keywords_beat_identifier_prefixes() {
        let lx = lexer();
        let toks = lx.tokenize("variable var odd odder").unwrap();
        let kinds: Vec<&str> = toks.iter().map(|t| t.kind.as_str()).collect();
        assert_eq!(kinds, ["ID", "var", "odd", "ID"]);
    }
}
