//! Highly ambiguous grammars used by the paper's complexity discussion
//! (§3.1 mentions `S → S S | a | b` exploding without ambiguity nodes).

use crate::cfg::{Cfg, CfgBuilder};

/// `S → S S | a`: `aⁿ` has Catalan(n−1) parses.
pub fn catalan() -> Cfg {
    let mut g = CfgBuilder::new("S");
    g.terminal("a");
    g.rule("S", &["S", "S"]);
    g.rule("S", &["a"]);
    g.build().expect("well-formed")
}

/// The paper's §3.1 grammar `S → S S | a | b`, exponential without
/// ambiguity nodes.
pub fn catalan_ab() -> Cfg {
    let mut g = CfgBuilder::new("S");
    g.terminals(&["a", "b"]);
    g.rule("S", &["S", "S"]);
    g.rule("S", &["a"]);
    g.rule("S", &["b"]);
    g.build().expect("well-formed")
}

/// Doubly ambiguous expressions: `E → E + E | E * E | n`.
pub fn expr() -> Cfg {
    let mut g = CfgBuilder::new("E");
    g.terminals(&["+", "*", "n"]);
    g.rule("E", &["E", "+", "E"]);
    g.rule("E", &["E", "*", "E"]);
    g.rule("E", &["n"]);
    g.build().expect("well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::Compiled;
    use pwd_core::ParserConfig;

    #[test]
    fn catalan_counts() {
        let mut c = Compiled::compile(&catalan(), ParserConfig::improved());
        let catalan_numbers = [1u128, 1, 2, 5, 14, 42, 132];
        for n in 1..=7usize {
            let toks: Vec<_> = (0..n).map(|_| c.token("a", "a").unwrap()).collect();
            let start = c.start;
            assert_eq!(
                c.lang.count_parses(start, &toks).unwrap(),
                pwd_core::TreeCount::Finite(catalan_numbers[n - 1]),
                "n={n}"
            );
            c.lang.reset();
        }
    }

    #[test]
    fn expr_ambiguity_grows() {
        let mut c = Compiled::compile(&expr(), ParserConfig::improved());
        // n + n * n has 2 parses; n+n*n+n has 5 (Catalan(3)).
        let mk = |c: &mut Compiled, ops: &[&str]| {
            let mut toks = vec![c.token("n", "n").unwrap()];
            for op in ops {
                toks.push(c.token(op, op).unwrap());
                toks.push(c.token("n", "n").unwrap());
            }
            toks
        };
        let t2 = mk(&mut c, &["+", "*"]);
        let start = c.start;
        assert_eq!(c.lang.count_parses(start, &t2).unwrap(), pwd_core::TreeCount::Finite(2));
        c.lang.reset();
        let t3 = mk(&mut c, &["+", "*", "+"]);
        assert_eq!(c.lang.count_parses(start, &t3).unwrap(), pwd_core::TreeCount::Finite(5));
    }
}
