//! Robustness properties of the recovery engine: **no input panics**, the
//! budget actually bounds the work, and enabling the recovery plumbing
//! without turning recovery on changes nothing.
//!
//! The input space is deliberately hostile — random byte soup driven
//! through the fused lexer path (lex errors become diagnostics, not
//! aborts), token streams salted with kinds the grammar has never heard
//! of, and 1–3-token mutants of real PL/0 programs — and every case runs
//! across the full backend matrix: the four-roster (PWD improved/original,
//! Earley, GLR) plus PWD under both [`MemoKeying`] modes × automaton
//! on/off.

use derp::api::{backends, Parser, PwdBackend, Session};
use derp::core::{AutomatonMode, MemoKeying, ParserConfig};
use derp::grammar::{gen, grammars, Cfg};
use derp::lex::Lexeme;
use derp::RecoveryBudget;

/// Deterministic split-mix RNG (same scheme as the corpus gate) — no RNG
/// dependency, identical streams on every platform.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// The full backend matrix: the standard roster plus PWD on every
/// (keying × automaton) point, so recovery is exercised against the memo
/// and automaton machinery, not just the default configuration.
fn matrix(cfg: &Cfg) -> Vec<Box<dyn Parser>> {
    let mut arms = backends(cfg);
    for (keying, automaton, label) in [
        (MemoKeying::ByClass, AutomatonMode::Lazy, "pwd-class-auto"),
        (MemoKeying::ByClass, AutomatonMode::Off, "pwd-class-interp"),
        (MemoKeying::ByValue, AutomatonMode::Lazy, "pwd-value-auto"),
        (MemoKeying::ByValue, AutomatonMode::Off, "pwd-value-interp"),
    ] {
        let config = ParserConfig { keying, automaton, ..ParserConfig::improved() };
        arms.push(Box::new(PwdBackend::with_config(cfg, config, label)));
    }
    arms
}

/// Printable byte soup: ~half plausible PL/0 fragments, ~half junk the
/// lexer must resynchronize past.
fn byte_soup(rng: &mut Rng, len: usize) -> String {
    const PIECES: &[&str] = &[
        "begin ", "end", ";", ":=", "x", "y1", "42", "(", ")", "[", "]", "+", "<=", "if ", "then ",
        "while ", "do ", "@", "$", "~", "\\", "&", "?", "\u{3bb}", "0x", "!!", "'", "`",
    ];
    let mut s = String::new();
    for _ in 0..len {
        s.push_str(PIECES[rng.below(PIECES.len())]);
        if rng.below(4) == 0 {
            s.push(' ');
        }
    }
    s
}

/// 1–3 token-level mutations (delete / duplicate / substitute-with-junk).
/// Unlike the corpus gate this pool includes kinds the grammar doesn't
/// know, so the unknown-kind recovery path is on the menu too.
fn mutate(rng: &mut Rng, clean: &[Lexeme]) -> Vec<Lexeme> {
    const KINDS: &[&str] = &[";", ".", "then", ")", "(", ":=", "NUM", "odd", "@junk", "\u{0}"];
    let mut toks = clean.to_vec();
    for _ in 0..rng.below(3) + 1 {
        if toks.len() < 2 {
            break;
        }
        let i = rng.below(toks.len());
        match rng.below(3) {
            0 => {
                toks.remove(i);
            }
            1 => {
                let dup = toks[i].clone();
                toks.insert(i, dup);
            }
            _ => {
                let kind = KINDS[rng.below(KINDS.len())];
                toks[i].kind = kind.to_string();
                toks[i].text = kind.to_string();
            }
        }
    }
    toks
}

/// Every diagnostic stream must respect the budget it was produced under:
/// at most `max_repairs` charged repairs, total charged cost within
/// `max_cost`, and (salvage drops included) no more error diagnostics than
/// input tokens — the termination half of the no-panic property.
fn assert_budgeted(diags: &[derp::Diagnostic], budget: &RecoveryBudget, tokens: usize, ctx: &str) {
    let charged: Vec<u32> = diags
        .iter()
        .filter_map(|d| d.repair.as_ref())
        .filter(|r| r.cost > 0)
        .map(|r| r.cost)
        .collect();
    assert!(
        charged.len() as u32 <= budget.max_repairs,
        "{ctx}: {} charged repairs exceeds max_repairs {}",
        charged.len(),
        budget.max_repairs
    );
    assert!(
        charged.iter().sum::<u32>() <= budget.max_cost,
        "{ctx}: charged cost {} exceeds max_cost {}",
        charged.iter().sum::<u32>(),
        budget.max_cost
    );
    assert!(diags.len() <= tokens + 2, "{ctx}: {} diagnostics for {tokens} tokens", diags.len());
}

/// Random byte soup through the fused lexer path: every arm terminates
/// with a verdict and a budget-respecting diagnostic stream — lex errors
/// surface as diagnostics, never as panics or aborts.
#[test]
fn byte_soup_never_panics_on_any_arm() {
    let cfg = grammars::pl0::cfg();
    let lexer = grammars::pl0::lexer();
    let mut rng = Rng(0xB17E_5011);
    let budget = RecoveryBudget::default();
    let soups: Vec<String> = (0..40)
        .map(|_| {
            let len = 4 + rng.below(24);
            byte_soup(&mut rng, len)
        })
        .collect();
    for arm in matrix(&cfg).iter_mut() {
        let name = arm.name();
        for (i, soup) in soups.iter().enumerate() {
            let mut session = Session::open(arm.as_mut()).expect("fresh session");
            session.enable_recovery(budget);
            let mut source = lexer.source(soup);
            let (_, diags) = session
                .feed_source(&mut source)
                .and_then(|_| session.finish_with_diagnostics())
                .unwrap_or_else(|e| panic!("{name} soup #{i} {soup:?}: {e}"));
            let tokens = lexer.tokenize(soup).map(|t| t.len()).unwrap_or(soup.len());
            assert_budgeted(&diags, &budget, tokens, &format!("{name} soup #{i}"));
        }
    }
}

/// Mutated PL/0 (including unknown token kinds) on every arm: sessions
/// terminate, diagnostics stay within budget, and a clean control program
/// recovers with zero diagnostics.
#[test]
fn mutated_corpora_terminate_within_budget_on_every_arm() {
    let cfg = grammars::pl0::cfg();
    let lexer = grammars::pl0::lexer();
    let mut rng = Rng(0x5EED_0009);
    let budget = RecoveryBudget::default();
    let mut corpus: Vec<Vec<Lexeme>> = Vec::new();
    while corpus.len() < 60 {
        let src = gen::pl0_source(16 + rng.below(20), rng.next(), 0.5);
        let Ok(clean) = lexer.tokenize(&src) else { continue };
        corpus.push(mutate(&mut rng, &clean));
    }
    for arm in matrix(&cfg).iter_mut() {
        let name = arm.name();
        for (i, mutant) in corpus.iter().enumerate() {
            let mut session = Session::open(arm.as_mut()).expect("fresh session");
            session.enable_recovery(budget);
            let (_, diags) = session
                .feed_lexemes(mutant)
                .and_then(|_| session.finish_with_diagnostics())
                .unwrap_or_else(|e| panic!("{name} mutant #{i}: {e}"));
            assert_budgeted(&diags, &budget, mutant.len(), &format!("{name} mutant #{i}"));
        }
    }
}

/// A [`Session`] with recovery **off** is a transparent wrapper: its
/// verdict matches the raw backend's batch `recognize` on the same kinds,
/// for clean and mutated inputs alike, on every arm of the matrix.
#[test]
fn recovery_off_sessions_leave_verdicts_unchanged() {
    let cfg = grammars::pl0::cfg();
    let lexer = grammars::pl0::lexer();
    let mut rng = Rng(0x0FF_5EED);
    let mut inputs: Vec<Vec<Lexeme>> = Vec::new();
    while inputs.len() < 40 {
        let src = gen::pl0_source(14 + rng.below(16), rng.next(), 0.5);
        let Ok(clean) = lexer.tokenize(&src) else { continue };
        // Half clean, half mutated — but only with kinds the grammar knows
        // (unknown kinds are an error on the raw path, a diagnostic only
        // under recovery, so they are out of scope for this equivalence).
        if inputs.len().is_multiple_of(2) {
            inputs.push(clean);
        } else {
            let mutant = mutate(&mut rng, &clean);
            let known =
                |kind: &str| (0..cfg.terminal_count()).any(|t| cfg.terminal_name(t as u32) == kind);
            if mutant.iter().all(|l| known(&l.kind)) {
                inputs.push(mutant);
            }
        }
    }
    for arm in matrix(&cfg).iter_mut() {
        let name = arm.name();
        for (i, input) in inputs.iter().enumerate() {
            let kinds: Vec<&str> = input.iter().map(|l| l.kind.as_str()).collect();
            let reference = arm.recognize(&kinds).unwrap_or_else(|e| panic!("{name} #{i}: {e}"));
            let mut session = Session::open(arm.as_mut()).expect("fresh session");
            let verdict = session
                .feed_lexemes(input)
                .and_then(|_| session.finish())
                .unwrap_or_else(|e| panic!("{name} #{i}: {e}"));
            assert_eq!(
                verdict, reference,
                "{name} #{i}: recovery-off session verdict diverges from raw recognize \
                 on {kinds:?}"
            );
        }
    }
}
