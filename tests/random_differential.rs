//! Randomized differential testing: PWD (two configurations), Earley, and
//! GLR over machine-generated grammars and inputs, all driven through the
//! shared [`derp::api::Parser`] trait — **forest-natively**: the widest
//! nets assert canonical forest-fingerprint equality (cubic-sized graph
//! comparison covering *all* derivations, however many), with exact counts
//! compared even where forests are cyclic/infinite, and bounded tree-set
//! equality kept only as a small-input cross-check.

use derp::api::{
    backends, unanimous_forests, EnumLimits as ApiLimits, ParseCount, Parser, PwdBackend,
};
use derp::core::{EnumLimits, MemoKeying, MemoStrategy, ParseMode, ParserConfig};
use derp::earley::EarleyParser;
use derp::grammar::{random_cfg, random_input, remove_useless, Compiled, RandomCfgConfig};
use derp::lex::Lexeme;

#[test]
fn four_parsers_agree_on_random_grammars() {
    let shape = RandomCfgConfig::default();
    let mut checked = 0usize;
    let mut accepted = 0usize;
    let mut past_cap = 0usize;
    for seed in 0..60 {
        let raw = random_cfg(&shape, seed);
        // GLR requires a productive grammar for meaningful FOLLOW sets;
        // clean first and skip the rare empty language.
        let Ok(cfg) = remove_useless(&raw) else { continue };
        let mut bs = backends(&cfg);
        for input_seed in 0..25 {
            let input = random_input(&cfg, 8, seed * 1000 + input_seed);
            let kinds: Vec<&str> = input.iter().map(String::as_str).collect();
            // Full forest agreement, not just the membership verdict:
            // exact counts (incl. Overflow/Infinite) on all four backends,
            // canonical fingerprints wherever the forest is finite.
            let summary = unanimous_forests(&mut bs, &kinds, &format!("seed {seed}"));
            if !summary.count.is_zero() {
                accepted += 1;
            }
            if summary.count.as_finite().is_none_or(|n| n > 64) {
                past_cap += 1; // cases the old bounded tree-set diff missed
            }
            checked += 1;
        }
    }
    assert!(checked > 1000, "coverage sanity: {checked} cases");
    assert!(accepted > 20, "acceptance sanity: {accepted} accepted of {checked}");
    assert!(past_cap > 0, "sanity: some case must exceed the old enumeration cap");
}

/// Property (random grammars × random inputs): whenever the exact forest
/// count is finite and within `EnumLimits::default().max_trees`, full
/// enumeration produces exactly that many trees, each with the input as its
/// fringe — across all three parser families × both PWD `MemoKeying` modes.
#[test]
fn forest_count_equals_enumeration_when_finite() {
    let shape = RandomCfgConfig::default();
    let cap = ApiLimits::default().max_trees as u128;
    let mut verified = 0usize;
    for seed in 500..540 {
        let Ok(cfg) = remove_useless(&random_cfg(&shape, seed)) else { continue };
        let mut arms: Vec<Box<dyn Parser>> = backends(&cfg);
        for (keying, label) in
            [(MemoKeying::ByValue, "pwd-value-keyed"), (MemoKeying::ByClass, "pwd-class-keyed")]
        {
            let config = ParserConfig { keying, ..ParserConfig::improved() };
            arms.push(Box::new(PwdBackend::with_config(&cfg, config, label)));
        }
        for input_seed in 0..10 {
            let input = random_input(&cfg, 7, seed * 917 + input_seed);
            let kinds: Vec<&str> = input.iter().map(String::as_str).collect();
            for arm in &mut arms {
                let forest = arm.parse_forest(&kinds).unwrap();
                let ParseCount::Finite(n) = forest.count() else { continue };
                if n == 0 || n > cap {
                    continue;
                }
                let limits =
                    ApiLimits { max_trees: n as usize + 1, max_depth: forest.depth() * 2 + 64 };
                let trees = forest.trees(limits);
                assert_eq!(
                    trees.len() as u128,
                    n,
                    "{}: count/enumeration mismatch on {kinds:?}\n{cfg}",
                    arm.name()
                );
                for t in &trees {
                    assert_eq!(t.fringe(), input, "{}: bad fringe in {t}", arm.name());
                }
                verified += 1;
            }
        }
    }
    assert!(verified > 100, "coverage sanity: {verified} finite-count cases verified");
}

#[test]
fn parse_counts_agree_across_memo_strategies_on_random_grammars() {
    let shape = RandomCfgConfig {
        nonterminals: 3,
        terminals: 2,
        extra_productions: 4,
        max_rhs: 3,
        terminal_bias: 0.6,
        epsilon_chance: 0.25,
    };
    for seed in 100..130 {
        let Ok(cfg) = remove_useless(&random_cfg(&shape, seed)) else { continue };
        // One prepared backend per memo strategy, reused across the inputs
        // via epoch reset.
        let mut arms: Vec<PwdBackend> = [
            (MemoStrategy::FullHash, "pwd-full-hash"),
            (MemoStrategy::SingleEntry, "pwd-single-entry"),
            (MemoStrategy::DualEntry, "pwd-dual-entry"),
        ]
        .into_iter()
        .map(|(memo, label)| {
            PwdBackend::with_config(&cfg, ParserConfig { memo, ..ParserConfig::improved() }, label)
        })
        .collect();
        for input_seed in 0..8 {
            let input = random_input(&cfg, 6, seed * 77 + input_seed);
            let kinds: Vec<&str> = input.iter().map(String::as_str).collect();
            let counts: Vec<ParseCount> = arms
                .iter_mut()
                .map(|arm| arm.parse_count(&kinds).unwrap_or_else(|e| panic!("{e}")))
                .collect();
            assert_eq!(counts[0], counts[1], "seed {seed}, input {kinds:?}\n{cfg}");
            assert_eq!(counts[1], counts[2], "dual-entry: seed {seed}, input {kinds:?}");
        }
    }
}

/// Class-keyed and value-keyed engines are observationally identical: on
/// random grammars and inputs whose lexemes are all *distinct* (the
/// adversarial case for class sharing — every token is a fresh value key
/// but a repeated class key), both keyings produce byte-identical recognize
/// verdicts, parse counts, and enumerated tree sets in both parse modes,
/// under every memo strategy.
#[test]
fn memo_keyings_are_observationally_identical_on_random_grammars() {
    let shape = RandomCfgConfig::default();
    let mut accepted = 0usize;
    for seed in 300..340 {
        let Ok(cfg) = remove_useless(&random_cfg(&shape, seed)) else { continue };
        for mode in [ParseMode::Recognize, ParseMode::Parse] {
            for memo in [MemoStrategy::SingleEntry, MemoStrategy::DualEntry, MemoStrategy::FullHash]
            {
                let mut arms: Vec<Compiled> = [MemoKeying::ByValue, MemoKeying::ByClass]
                    .map(|keying| {
                        let config =
                            ParserConfig { mode, memo, keying, ..ParserConfig::improved() };
                        Compiled::compile(&cfg, config)
                    })
                    .into_iter()
                    .collect();
                for input_seed in 0..8 {
                    let input = random_input(&cfg, 7, seed * 131 + input_seed);
                    // Give every occurrence a unique lexeme.
                    let lexemes: Vec<Lexeme> = input
                        .iter()
                        .enumerate()
                        .map(|(i, k)| Lexeme {
                            kind: k.clone(),
                            text: format!("{k}_{i}"),
                            offset: i,
                        })
                        .collect();
                    let mut results = Vec::new();
                    for arm in &mut arms {
                        arm.lang.reset();
                        let toks = arm.tokens_from_lexemes(&lexemes).unwrap();
                        let start = arm.start;
                        let ok = arm.lang.recognize(start, &toks).unwrap();
                        let (count, trees) = if mode == ParseMode::Parse && ok {
                            arm.lang.reset();
                            let count = arm.lang.count_parses(start, &toks).unwrap();
                            arm.lang.reset();
                            let limits = EnumLimits { max_trees: 16, max_depth: 64 };
                            let mut trees: Vec<String> = arm
                                .lang
                                .parse_trees(start, &toks, limits)
                                .unwrap()
                                .iter()
                                .map(|t| t.to_string())
                                .collect();
                            trees.sort();
                            (count, trees)
                        } else {
                            (derp::core::TreeCount::Finite(0), Vec::new())
                        };
                        results.push((ok, count, trees));
                    }
                    assert_eq!(
                        results[0], results[1],
                        "keyings disagree: seed {seed}, {mode:?}, {memo:?}, input {input:?}\n{cfg}"
                    );
                    if results[0].0 {
                        accepted += 1;
                    }
                }
            }
        }
    }
    assert!(accepted > 30, "acceptance sanity: {accepted}");
}

/// Both keyings agree with the Earley and GLR baselines through the shared
/// differential driver — forest-fingerprint equality with the keying arms
/// added to the standard roster (class-keyed derivative sharing must be
/// invisible in the forests, not just the verdicts).
#[test]
fn keyed_backends_agree_with_baselines_on_random_grammars() {
    let shape = RandomCfgConfig::default();
    let mut checked = 0usize;
    for seed in 400..430 {
        let Ok(cfg) = remove_useless(&random_cfg(&shape, seed)) else { continue };
        let mut bs = backends(&cfg);
        for (keying, label) in
            [(MemoKeying::ByValue, "pwd-value-keyed"), (MemoKeying::ByClass, "pwd-class-keyed")]
        {
            let config = ParserConfig { keying, ..ParserConfig::improved() };
            bs.push(Box::new(PwdBackend::with_config(&cfg, config, label)));
        }
        for input_seed in 0..15 {
            let input = random_input(&cfg, 8, seed * 513 + input_seed);
            let kinds: Vec<&str> = input.iter().map(String::as_str).collect();
            unanimous_forests(&mut bs, &kinds, &format!("seed {seed}"));
            checked += 1;
        }
    }
    assert!(checked > 300, "coverage sanity: {checked} cases");
}

/// Earley's extracted derivation tree must cover exactly the input for
/// accepted random sentences. (Tree extraction is backend-specific, so this
/// one test drives `EarleyParser` directly rather than through the trait.)
#[test]
fn earley_trees_cover_input_on_random_grammars() {
    let shape = RandomCfgConfig::default();
    let mut trees = 0;
    for seed in 200..240 {
        let Ok(cfg) = remove_useless(&random_cfg(&shape, seed)) else { continue };
        let earley = EarleyParser::new(&cfg);
        for input_seed in 0..15 {
            let input = random_input(&cfg, 6, seed * 31 + input_seed);
            let kinds: Vec<&str> = input.iter().map(String::as_str).collect();
            let toks = earley.kinds_to_tokens(&kinds).unwrap();
            if let Some(tree) = earley.parse_tree(&toks) {
                assert!(earley.recognize(&toks), "tree implies acceptance");
                assert_eq!(tree.leaves(), toks.len(), "{kinds:?}\n{cfg}");
                trees += 1;
            }
        }
    }
    assert!(trees > 10, "tree-extraction coverage: {trees}");
}
