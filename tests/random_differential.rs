//! Randomized differential testing: PWD (two configurations), Earley, and
//! GLR over machine-generated grammars and inputs.

use derp::core::ParserConfig;
use derp::earley::EarleyParser;
use derp::glr::GlrParser;
use derp::grammar::{random_cfg, random_input, remove_useless, Compiled, RandomCfgConfig};

#[test]
fn four_parsers_agree_on_random_grammars() {
    let shape = RandomCfgConfig::default();
    let mut checked = 0usize;
    let mut accepted = 0usize;
    for seed in 0..60 {
        let raw = random_cfg(&shape, seed);
        // GLR requires a productive grammar for meaningful FOLLOW sets;
        // clean first and skip the rare empty language.
        let Ok(cfg) = remove_useless(&raw) else { continue };
        let earley = EarleyParser::new(&cfg);
        let glr = GlrParser::new(&cfg);
        let mut improved = Compiled::compile(&cfg, ParserConfig::improved());
        let mut original = Compiled::compile(&cfg, ParserConfig::original_2011());
        for input_seed in 0..25 {
            let input = random_input(&cfg, 8, seed * 1000 + input_seed);
            let kinds: Vec<&str> = input.iter().map(String::as_str).collect();

            let e = earley.recognize_kinds(&kinds).unwrap();
            let g = glr.recognize_kinds(&kinds).unwrap();

            improved.lang.reset();
            let toks: Vec<_> = kinds.iter().map(|k| improved.token(k, k).unwrap()).collect();
            let pi = improved.lang.recognize(improved.start, &toks).unwrap();

            original.lang.reset();
            let toks: Vec<_> = kinds.iter().map(|k| original.token(k, k).unwrap()).collect();
            let po = original.lang.recognize(original.start, &toks).unwrap();

            assert_eq!(e, g, "Earley vs GLR on seed {seed}, input {kinds:?}\n{cfg}");
            assert_eq!(e, pi, "Earley vs PWD-improved on seed {seed}, input {kinds:?}\n{cfg}");
            assert_eq!(pi, po, "PWD improved vs original on seed {seed}, input {kinds:?}");
            checked += 1;
            if e {
                accepted += 1;
            }
        }
    }
    assert!(checked > 1000, "coverage sanity: {checked} cases");
    assert!(accepted > 20, "acceptance sanity: {accepted} accepted of {checked}");
}

#[test]
fn parse_counts_agree_across_memo_strategies_on_random_grammars() {
    use derp::core::MemoStrategy;
    let shape = RandomCfgConfig {
        nonterminals: 3,
        terminals: 2,
        extra_productions: 4,
        max_rhs: 3,
        terminal_bias: 0.6,
        epsilon_chance: 0.25,
    };
    for seed in 100..130 {
        let Ok(cfg) = remove_useless(&random_cfg(&shape, seed)) else { continue };
        for input_seed in 0..8 {
            let input = random_input(&cfg, 6, seed * 77 + input_seed);
            let kinds: Vec<&str> = input.iter().map(String::as_str).collect();
            let mut counts = Vec::new();
            for memo in
                [MemoStrategy::FullHash, MemoStrategy::SingleEntry, MemoStrategy::DualEntry]
            {
                let config = ParserConfig { memo, ..ParserConfig::improved() };
                let mut c = Compiled::compile(&cfg, config);
                let toks: Vec<_> = kinds.iter().map(|k| c.token(k, k).unwrap()).collect();
                let count = match c.lang.count_parses(c.start, &toks) {
                    Ok(n) => Some(n),
                    Err(derp::core::PwdError::Rejected { .. }) => None,
                    Err(e) => panic!("engine error: {e}"),
                };
                counts.push(count);
            }
            assert_eq!(counts[0], counts[1], "seed {seed}, input {kinds:?}\n{cfg}");
            assert_eq!(counts[1], counts[2], "dual-entry: seed {seed}, input {kinds:?}");
        }
    }
}

/// Earley's extracted derivation tree must cover exactly the input for
/// accepted random sentences.
#[test]
fn earley_trees_cover_input_on_random_grammars() {
    let shape = RandomCfgConfig::default();
    let mut trees = 0;
    for seed in 200..240 {
        let Ok(cfg) = remove_useless(&random_cfg(&shape, seed)) else { continue };
        let earley = EarleyParser::new(&cfg);
        for input_seed in 0..15 {
            let input = random_input(&cfg, 6, seed * 31 + input_seed);
            let kinds: Vec<&str> = input.iter().map(String::as_str).collect();
            let toks = earley.kinds_to_tokens(&kinds).unwrap();
            if let Some(tree) = earley.parse_tree(&toks) {
                assert!(earley.recognize(&toks), "tree implies acceptance");
                assert_eq!(tree.leaves(), toks.len(), "{kinds:?}\n{cfg}");
                trees += 1;
            }
        }
    }
    assert!(trees > 10, "tree-extraction coverage: {trees}");
}
