//! Streaming/batch agreement: chunked feeding with random chunk boundaries
//! and random checkpoint/rollback interleavings is observationally
//! identical to batch parsing — same verdict for all three backends (and
//! both `MemoKeying` modes of PWD), and for PWD the same parse count and
//! the same enumerated tree set.
//!
//! This is the correctness contract of the streaming pipeline: chunk
//! boundaries are invisible (the derivative after `k` tokens does not know
//! how the tokens arrived), and a rollback to a checkpoint erases the
//! speculative suffix completely (the saved derivative *is* the state).

use derp::api::{backend_by_name, Parser, Session};
use derp::core::{EnumLimits, MemoKeying, ParseMode, ParserConfig, SessionState};
use derp::grammar::{random_cfg, random_input, remove_useless, Cfg, Compiled, RandomCfgConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Feeds `kinds` to an open session in random chunks, injecting random
/// speculative excursions — checkpoint, feed junk, rollback — between
/// chunks. Each token is fed with a *unique* lexeme text so the class-keyed
/// memo paths are exercised adversarially.
fn stream_with_speculation(
    session: &mut Session<'_>,
    kinds: &[&str],
    alphabet: &[String],
    rng: &mut StdRng,
) {
    let mut i = 0;
    let mut uniq = 0usize;
    let feed_one = |session: &mut Session<'_>, kind: &str, uniq: &mut usize| {
        *uniq += 1;
        session.feed(kind, &format!("{kind}_{uniq}")).expect("valid kind feeds");
    };
    loop {
        // Random speculative excursion (possibly dead, possibly fine).
        if rng.random_bool(0.4) && !alphabet.is_empty() {
            let cp = session.checkpoint().expect("checkpoint");
            for _ in 0..rng.random_range(1..=3usize) {
                let junk = &alphabet[rng.random_range(0..alphabet.len())];
                feed_one(session, junk, &mut uniq);
            }
            session.rollback(&cp).expect("rollback to a live checkpoint");
            assert_eq!(session.tokens_fed(), i, "rollback restores the position");
        }
        if i == kinds.len() {
            break;
        }
        // Random chunk of real input.
        let chunk = rng.random_range(1..=(kinds.len() - i).min(4));
        for k in &kinds[i..i + chunk] {
            feed_one(session, k, &mut uniq);
        }
        i += chunk;
    }
}

fn shapes() -> RandomCfgConfig {
    RandomCfgConfig::default()
}

/// All backends, plus PWD under both memo keyings: random chunking with
/// random checkpoint/rollback interleavings produces the batch verdict.
#[test]
fn chunked_streaming_with_rollbacks_matches_batch_verdicts() {
    let shape = shapes();
    let mut checked = 0usize;
    let mut accepted = 0usize;
    for seed in 0..25 {
        let Ok(cfg) = remove_useless(&random_cfg(&shape, seed)) else { continue };
        let alphabet: Vec<String> =
            (0..cfg.terminal_count()).map(|t| cfg.terminal_name(t as u32).to_string()).collect();
        let mut arms: Vec<Box<dyn Parser>> = ["pwd-improved", "pwd-original", "earley", "glr"]
            .iter()
            .filter_map(|n| backend_by_name(n, &cfg))
            .collect();
        arms.push(Box::new(derp::api::PwdBackend::with_config(
            &cfg,
            ParserConfig { keying: MemoKeying::ByValue, ..ParserConfig::improved() },
            "pwd-value-keyed",
        )));
        for input_seed in 0..10 {
            let input = random_input(&cfg, 8, seed * 1000 + input_seed);
            let kinds: Vec<&str> = input.iter().map(String::as_str).collect();
            for backend in &mut arms {
                let name = backend.name();
                let batch = backend.recognize(&kinds).unwrap();
                let mut rng = StdRng::seed_from_u64(seed * 7919 + input_seed * 13 + checked as u64);
                let mut session = Session::open(&mut **backend).unwrap();
                stream_with_speculation(&mut session, &kinds, &alphabet, &mut rng);
                assert_eq!(session.tokens_fed(), kinds.len(), "{name} fed everything");
                let streamed = session.finish().unwrap();
                assert_eq!(
                    streamed, batch,
                    "{name}: streaming disagrees with batch on {kinds:?} (seed {seed})\n{cfg}"
                );
                if streamed {
                    accepted += 1;
                }
                checked += 1;
            }
        }
    }
    assert!(checked > 500, "coverage sanity: {checked} cases");
    assert!(accepted > 20, "acceptance sanity: {accepted} accepted of {checked}");
}

/// PWD, both keyings, parse mode: the chunked-with-rollbacks session yields
/// byte-identical parse counts and tree sets to the batch path.
#[test]
fn chunked_streaming_with_rollbacks_matches_batch_counts_and_trees() {
    let shape = RandomCfgConfig {
        nonterminals: 3,
        terminals: 2,
        extra_productions: 4,
        max_rhs: 3,
        terminal_bias: 0.6,
        epsilon_chance: 0.25,
    };
    let limits = EnumLimits { max_trees: 16, max_depth: 64 };
    let mut compared = 0usize;
    for seed in 500..525 {
        let Ok(cfg) = remove_useless(&random_cfg(&shape, seed)) else { continue };
        for keying in [MemoKeying::ByValue, MemoKeying::ByClass] {
            for mode in [ParseMode::Recognize, ParseMode::Parse] {
                let config = ParserConfig { keying, mode, ..ParserConfig::improved() };
                let mut arm = Compiled::compile(&cfg, config);
                for input_seed in 0..6 {
                    let input = random_input(&cfg, 6, seed * 31 + input_seed);
                    let kinds: Vec<&str> = input.iter().map(String::as_str).collect();
                    compared += 1;
                    compare_streamed_forest(
                        &mut arm,
                        &cfg,
                        &kinds,
                        mode,
                        limits,
                        seed * 7717 + input_seed,
                    );
                }
            }
        }
    }
    assert!(compared > 100, "coverage sanity: {compared}");
}

/// One comparison: batch verdict/count/trees vs a chunked session with
/// checkpoint/rollback excursions on the same engine.
fn compare_streamed_forest(
    arm: &mut Compiled,
    cfg: &Cfg,
    kinds: &[&str],
    mode: ParseMode,
    limits: EnumLimits,
    rng_seed: u64,
) {
    let start = arm.start;
    // --- batch ---
    arm.lang.reset();
    let toks: Vec<derp::core::Token> =
        kinds.iter().map(|k| arm.token(k, k).expect("grammar terminal")).collect();
    let batch_ok = arm.lang.recognize(start, &toks).unwrap();
    let (batch_count, batch_trees) = if batch_ok && mode == ParseMode::Parse {
        arm.lang.reset();
        let count = arm.lang.count_parses(start, &toks).unwrap();
        arm.lang.reset();
        let mut trees: Vec<String> = arm
            .lang
            .parse_trees(start, &toks, limits)
            .unwrap()
            .iter()
            .map(|t| t.to_string())
            .collect();
        trees.sort();
        (count, trees)
    } else {
        (derp::core::TreeCount::Finite(0), Vec::new())
    };

    // --- streamed, chunked, with speculative excursions ---
    arm.lang.reset();
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut state = SessionState::start(&mut arm.lang, start).unwrap();
    let mut i = 0;
    loop {
        if rng.random_bool(0.4) && !toks.is_empty() {
            let cp = state.checkpoint();
            for _ in 0..rng.random_range(1..=2usize) {
                let junk = &toks[rng.random_range(0..toks.len())];
                let _ = state.feed(&mut arm.lang, junk).unwrap();
            }
            state.rollback(&cp);
        }
        if i == toks.len() {
            break;
        }
        let chunk = rng.random_range(1..=(toks.len() - i).min(3));
        for t in &toks[i..i + chunk] {
            let _ = state.feed(&mut arm.lang, t).unwrap();
        }
        i += chunk;
    }
    let streamed_ok = state.prefix_is_sentence(&mut arm.lang);
    assert_eq!(streamed_ok, batch_ok, "verdict: {kinds:?}\n{cfg}");
    if streamed_ok && mode == ParseMode::Parse {
        let forest = state.forest(&mut arm.lang).unwrap();
        let streamed_count = arm.lang.count_of(forest);
        let mut streamed_trees: Vec<String> =
            arm.lang.trees_of(forest, limits).iter().map(|t| t.to_string()).collect();
        streamed_trees.sort();
        assert_eq!(streamed_count, batch_count, "parse count: {kinds:?}\n{cfg}");
        assert_eq!(streamed_trees, batch_trees, "tree set: {kinds:?}\n{cfg}");
    }
    state.finish(&mut arm.lang);
}

/// Trait-level forest agreement: on every backend, a chunked session with
/// speculative checkpoint/rollback excursions finishes with the *same
/// canonical forest* (summary: exact count, depth, node count, fingerprint)
/// as the batch `parse_forest` of the same input.
#[test]
fn streamed_forests_match_batch_forests_on_every_backend() {
    let shape = RandomCfgConfig::default();
    let mut compared = 0usize;
    for seed in 700..715 {
        let Ok(cfg) = remove_useless(&random_cfg(&shape, seed)) else { continue };
        for name in ["pwd", "earley", "glr"] {
            let mut backend = backend_by_name(name, &cfg).expect("roster name");
            for input_seed in 0..6 {
                let input = random_input(&cfg, 6, seed * 53 + input_seed);
                let kinds: Vec<&str> = input.iter().map(String::as_str).collect();
                let batch = backend.parse_forest(&kinds).unwrap().summary();
                let mut rng = StdRng::seed_from_u64(seed * 977 + input_seed);
                let mut session = Session::open(&mut *backend).unwrap();
                let mut i = 0;
                loop {
                    if rng.random_bool(0.4) && !kinds.is_empty() {
                        let cp = session.checkpoint().unwrap();
                        for _ in 0..rng.random_range(1..=2usize) {
                            let junk = kinds[rng.random_range(0..kinds.len())];
                            session.feed(junk, junk).unwrap();
                        }
                        session.rollback(&cp).unwrap();
                    }
                    if i == kinds.len() {
                        break;
                    }
                    let chunk = rng.random_range(1..=(kinds.len() - i).min(3));
                    for k in &kinds[i..i + chunk] {
                        session.feed(k, k).unwrap();
                    }
                    i += chunk;
                }
                let streamed = session.finish_forest().unwrap().summary();
                assert_eq!(streamed, batch, "{name}: {kinds:?}\n{cfg}");
                compared += 1;
            }
        }
    }
    assert!(compared > 100, "coverage sanity: {compared}");
}
