//! Cross-crate integration: the parser families (improved PWD, original-2011
//! PWD, Earley, GLR) must agree for every grammar in the corpus, over both
//! generated-valid and randomly mutated inputs — and not just on
//! *membership*: on ambiguous grammars the backends' **shared parse
//! forests** must coincide, asserted by canonical-fingerprint equality
//! (`unanimous_forests`), which compares cubic-sized ambiguity-node graphs
//! instead of (possibly exponential, silently truncated) enumerated tree
//! sets. Bounded tree-set comparison survives only as a cross-check on
//! small inputs.
//!
//! All four backends are driven through the shared [`derp::api::Parser`]
//! trait: one roster is prepared per grammar and reused across inputs (the
//! PWD arms lean on the engine's O(1) epoch reset), so there is no
//! per-backend driver code anywhere in this file.

use derp::api::{backends, unanimous, unanimous_forests, EnumLimits, ParseCount};
use derp::grammar::{gen, grammars, CfgBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

#[test]
fn agreement_on_arith_random_strings() {
    let cfg = grammars::arith::cfg();
    let mut bs = backends(&cfg);
    let alphabet = ["NUM", "+", "-", "*", "/", "(", ")"];
    let mut rng = StdRng::seed_from_u64(11);
    let mut accepted = 0;
    for _ in 0..200 {
        let len = rng.random_range(0..10usize);
        let kinds: Vec<&str> =
            (0..len).map(|_| alphabet[rng.random_range(0..alphabet.len())]).collect();
        if unanimous(&mut bs, &kinds, "arith") {
            accepted += 1;
        }
    }
    assert!(accepted > 0, "sanity: some random strings should parse");
}

#[test]
fn agreement_on_arith_generated_valid() {
    let cfg = grammars::arith::cfg();
    let mut bs = backends(&cfg);
    let lexer = grammars::arith::lexer();
    for seed in 0..20 {
        let src = gen::arith_source(31, seed);
        let lexemes = lexer.tokenize(&src).unwrap();
        let kinds: Vec<&str> = lexemes.iter().map(|l| l.kind.as_str()).collect();
        assert!(unanimous(&mut bs, &kinds, "arith-valid"), "{src}");
        let summary = unanimous_forests(&mut bs, &kinds, "arith-forest");
        assert_eq!(summary.count, ParseCount::Finite(1), "arith is unambiguous: {src}");
    }
}

#[test]
fn agreement_on_json() {
    let cfg = grammars::json::cfg();
    let mut bs = backends(&cfg);
    let lexer = grammars::json::lexer();
    for seed in 0..10 {
        let src = gen::json_source(60, seed);
        let lexemes = lexer.tokenize(&src).unwrap();
        let kinds: Vec<&str> = lexemes.iter().map(|l| l.kind.as_str()).collect();
        assert!(unanimous(&mut bs, &kinds, "json-valid"), "{src}");
        // JSON is unambiguous: every backend's forest is the same 1-tree
        // canonical graph.
        let summary = unanimous_forests(&mut bs, &kinds, "json-forest");
        assert_eq!(summary.count, ParseCount::Finite(1), "{src}");
    }
    // Mutations: drop/duplicate a token.
    let src = gen::json_source(40, 99);
    let lexemes = lexer.tokenize(&src).unwrap();
    let kinds: Vec<&str> = lexemes.iter().map(|l| l.kind.as_str()).collect();
    for i in 0..kinds.len().min(12) {
        let mut dropped = kinds.clone();
        dropped.remove(i);
        unanimous(&mut bs, &dropped, "json-drop");
        let mut dup = kinds.clone();
        dup.insert(i, kinds[i]);
        unanimous(&mut bs, &dup, "json-dup");
    }
}

#[test]
fn agreement_on_ambiguous_grammars() {
    for cfg in
        [grammars::ambiguous::catalan(), grammars::ambiguous::expr(), grammars::worst_case::cfg()]
    {
        let mut bs = backends(&cfg);
        let terms: Vec<String> =
            (0..cfg.terminal_count()).map(|t| cfg.terminal_name(t as u32).to_string()).collect();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..60 {
            let len = rng.random_range(0..8usize);
            let kinds: Vec<&str> =
                (0..len).map(|_| terms[rng.random_range(0..terms.len())].as_str()).collect();
            // Forest-native agreement: identical exact counts on every
            // backend, identical canonical fingerprints where finite.
            unanimous_forests(&mut bs, &kinds, "ambiguous");
        }
    }
}

/// The headline property the old tree-set comparison could not check:
/// on inputs whose exact ambiguity exceeds `EnumLimits::default().max_trees`
/// (so bounded enumeration is silently incomplete), all four backends build
/// the *same* forest — equal exact counts and equal canonical fingerprints,
/// established without materializing a single tree set.
#[test]
fn forest_agreement_beyond_enumeration_limits() {
    let cap = EnumLimits::default().max_trees as u128;

    // S → S S | a over a^10: C₉ = 4862 readings.
    let cfg = grammars::ambiguous::catalan();
    let mut bs = backends(&cfg);
    let summary = unanimous_forests(&mut bs, &["a"; 10], "catalan-a10");
    assert_eq!(summary.count, ParseCount::Finite(4862));
    assert!(4862 > cap, "the comparison covered an un-enumerable tree set");

    // E → E + E | E * E | n over 9 operands: 1430 · 2⁸ binarizations ×
    // operator choices — far past the cap as well.
    let cfg = grammars::ambiguous::expr();
    let mut bs = backends(&cfg);
    let mut kinds = vec!["n"];
    for i in 0..8 {
        kinds.push(if i % 2 == 0 { "+" } else { "*" });
        kinds.push("n");
    }
    let summary = unanimous_forests(&mut bs, &kinds, "expr-9-operands");
    match summary.count {
        ParseCount::Finite(n) => assert!(n > cap, "expr ambiguity {n} must exceed {cap}"),
        other => panic!("expected a finite count, got {other:?}"),
    }

    // Cross-check on a small sibling input: the enumerated tree sets agree
    // too (the fingerprint is not vacuously equal).
    let mut sets: Vec<Vec<String>> = Vec::new();
    for b in &mut bs {
        let mut ts: Vec<String> = b
            .parse_trees(&["n", "+", "n", "*", "n"], EnumLimits::default())
            .unwrap()
            .iter()
            .map(|t| t.to_string())
            .collect();
        ts.sort();
        sets.push(ts);
    }
    assert!(sets.windows(2).all(|w| w[0] == w[1]), "{sets:?}");
    assert_eq!(sets[0].len(), 2, "n+n*n has exactly two readings");
}

#[test]
fn agreement_on_random_grammars() {
    // Random small CFGs; random strings. This is the widest differential net.
    let mut rng = StdRng::seed_from_u64(2024);
    for case in 0..30 {
        let n_nts = rng.random_range(1..4usize);
        let n_prods = rng.random_range(n_nts..n_nts + 5);
        let mut b = CfgBuilder::new("N0");
        b.terminals(&["a", "b"]);
        let nt_names: Vec<String> = (0..n_nts).map(|i| format!("N{i}")).collect();
        // Ensure every nonterminal has at least one production.
        for name in &nt_names {
            let body = random_body(&mut rng, &nt_names, true);
            let refs: Vec<&str> = body.iter().map(String::as_str).collect();
            b.rule(name, &refs);
        }
        for _ in n_nts..n_prods {
            let lhs = nt_names[rng.random_range(0..n_nts)].clone();
            let body = random_body(&mut rng, &nt_names, false);
            let refs: Vec<&str> = body.iter().map(String::as_str).collect();
            b.rule(&lhs, &refs);
        }
        let cfg = b.build().unwrap();
        let mut bs = backends(&cfg);
        for _ in 0..20 {
            let len = rng.random_range(0..7usize);
            let kinds: Vec<&str> =
                (0..len).map(|_| if rng.random_bool(0.5) { "a" } else { "b" }).collect();
            unanimous(&mut bs, &kinds, &format!("random-{case}"));
        }
    }
}

fn random_body(rng: &mut StdRng, nts: &[String], terminal_biased: bool) -> Vec<String> {
    let len =
        if terminal_biased { rng.random_range(0..3usize) } else { rng.random_range(0..4usize) };
    (0..len)
        .map(|_| {
            if terminal_biased || rng.random_bool(0.5) {
                if rng.random_bool(0.5) {
                    "a".to_string()
                } else {
                    "b".to_string()
                }
            } else {
                nts[rng.random_range(0..nts.len())].clone()
            }
        })
        .collect()
}

#[test]
fn agreement_on_python_corpus() {
    let cfg = grammars::python::cfg();
    let mut bs = backends(&cfg);
    for seed in 0..4 {
        let src = gen::python_source(150, seed);
        let lexemes = derp::lex::tokenize_python(&src).unwrap();
        let answers: Vec<(&str, bool)> =
            bs.iter_mut().map(|b| (b.name(), b.recognize_lexemes(&lexemes).unwrap())).collect();
        for &(name, ans) in &answers {
            assert!(ans, "seed {seed}: corpus must be valid per {name}\n{src}");
        }
    }
}

#[test]
fn python_rejections_agree() {
    let cfg = grammars::python::cfg();
    let mut bs = backends(&cfg);
    for src in [
        "def f(:\n    pass\n",
        "x = = 1\n",
        "if x\n    pass\n",
        "return 1 +\n",
        "class :\n    pass\n",
    ] {
        let lexemes = derp::lex::tokenize_python(src).unwrap();
        for b in bs.iter_mut() {
            let ans = b.recognize_lexemes(&lexemes).unwrap();
            assert!(!ans, "{src:?} should be rejected by {}", b.name());
        }
    }
}
