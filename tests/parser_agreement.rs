//! Cross-crate integration: the three parser families (PWD, Earley, GLR)
//! must agree on membership for every grammar in the corpus, over both
//! generated-valid and randomly mutated inputs.

use derp::core::ParserConfig;
use derp::earley::EarleyParser;
use derp::glr::GlrParser;
use derp::grammar::{gen, grammars, Cfg, CfgBuilder, Compiled};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Runs all three parsers on a kind sequence and asserts agreement;
/// returns the verdict.
fn verdict(cfg: &Cfg, kinds: &[&str], label: &str) -> bool {
    let mut pwd = Compiled::compile(cfg, ParserConfig::improved());
    let toks: Vec<_> = kinds
        .iter()
        .map(|k| pwd.token(k, k).unwrap_or_else(|| panic!("unknown terminal {k}")))
        .collect();
    let pwd_ans = pwd.lang.recognize(pwd.start, &toks).unwrap();

    let earley = EarleyParser::new(cfg);
    let earley_ans = earley.recognize_kinds(kinds).unwrap();

    let glr = GlrParser::new(cfg);
    let glr_ans = glr.recognize_kinds(kinds).unwrap();

    assert_eq!(pwd_ans, earley_ans, "{label}: PWD vs Earley on {kinds:?}");
    assert_eq!(earley_ans, glr_ans, "{label}: Earley vs GLR on {kinds:?}");
    pwd_ans
}

/// Also checks the original-2011 PWD configuration agrees with improved.
fn pwd_configs_agree(cfg: &Cfg, kinds: &[&str], label: &str) {
    let mut answers = Vec::new();
    for config in [ParserConfig::improved(), ParserConfig::original_2011()] {
        let mut pwd = Compiled::compile(cfg, config);
        let toks: Vec<_> = kinds.iter().map(|k| pwd.token(k, k).unwrap()).collect();
        answers.push(pwd.lang.recognize(pwd.start, &toks).unwrap());
    }
    assert_eq!(answers[0], answers[1], "{label}: improved vs original on {kinds:?}");
}

#[test]
fn agreement_on_arith_random_strings() {
    let cfg = grammars::arith::cfg();
    let alphabet = ["NUM", "+", "-", "*", "/", "(", ")"];
    let mut rng = StdRng::seed_from_u64(11);
    let mut accepted = 0;
    for _ in 0..200 {
        let len = rng.random_range(0..10usize);
        let kinds: Vec<&str> =
            (0..len).map(|_| alphabet[rng.random_range(0..alphabet.len())]).collect();
        if verdict(&cfg, &kinds, "arith") {
            accepted += 1;
        }
    }
    assert!(accepted > 0, "sanity: some random strings should parse");
}

#[test]
fn agreement_on_arith_generated_valid() {
    let cfg = grammars::arith::cfg();
    let lexer = grammars::arith::lexer();
    for seed in 0..20 {
        let src = gen::arith_source(31, seed);
        let lexemes = lexer.tokenize(&src).unwrap();
        let kinds: Vec<&str> = lexemes.iter().map(|l| l.kind.as_str()).collect();
        assert!(verdict(&cfg, &kinds, "arith-valid"), "{src}");
        pwd_configs_agree(&cfg, &kinds, "arith-valid");
    }
}

#[test]
fn agreement_on_json() {
    let cfg = grammars::json::cfg();
    let lexer = grammars::json::lexer();
    for seed in 0..10 {
        let src = gen::json_source(60, seed);
        let lexemes = lexer.tokenize(&src).unwrap();
        let kinds: Vec<&str> = lexemes.iter().map(|l| l.kind.as_str()).collect();
        assert!(verdict(&cfg, &kinds, "json-valid"), "{src}");
    }
    // Mutations: drop/duplicate a token.
    let src = gen::json_source(40, 99);
    let lexemes = lexer.tokenize(&src).unwrap();
    let kinds: Vec<&str> = lexemes.iter().map(|l| l.kind.as_str()).collect();
    for i in 0..kinds.len().min(12) {
        let mut dropped = kinds.clone();
        dropped.remove(i);
        verdict(&cfg, &dropped, "json-drop");
        let mut dup = kinds.clone();
        dup.insert(i, kinds[i]);
        verdict(&cfg, &dup, "json-dup");
    }
}

#[test]
fn agreement_on_ambiguous_grammars() {
    for cfg in [grammars::ambiguous::catalan(), grammars::ambiguous::expr(), grammars::worst_case::cfg()]
    {
        let terms: Vec<String> =
            (0..cfg.terminal_count()).map(|t| cfg.terminal_name(t as u32).to_string()).collect();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..60 {
            let len = rng.random_range(0..8usize);
            let kinds: Vec<&str> =
                (0..len).map(|_| terms[rng.random_range(0..terms.len())].as_str()).collect();
            verdict(&cfg, &kinds, "ambiguous");
        }
    }
}

#[test]
fn agreement_on_random_grammars() {
    // Random small CFGs; random strings. This is the widest differential net.
    let mut rng = StdRng::seed_from_u64(2024);
    for case in 0..30 {
        let n_nts = rng.random_range(1..4usize);
        let n_prods = rng.random_range(n_nts..n_nts + 5);
        let mut b = CfgBuilder::new("N0");
        b.terminals(&["a", "b"]);
        let nt_names: Vec<String> = (0..n_nts).map(|i| format!("N{i}")).collect();
        // Ensure every nonterminal has at least one production.
        for name in &nt_names {
            let body = random_body(&mut rng, &nt_names, true);
            let refs: Vec<&str> = body.iter().map(String::as_str).collect();
            b.rule(name, &refs);
        }
        for _ in n_nts..n_prods {
            let lhs = nt_names[rng.random_range(0..n_nts)].clone();
            let body = random_body(&mut rng, &nt_names, false);
            let refs: Vec<&str> = body.iter().map(String::as_str).collect();
            b.rule(&lhs, &refs);
        }
        let cfg = b.build().unwrap();
        for _ in 0..20 {
            let len = rng.random_range(0..7usize);
            let kinds: Vec<&str> =
                (0..len).map(|_| if rng.random_bool(0.5) { "a" } else { "b" }).collect();
            verdict(&cfg, &kinds, &format!("random-{case}"));
        }
    }
}

fn random_body(rng: &mut StdRng, nts: &[String], terminal_biased: bool) -> Vec<String> {
    let len = if terminal_biased { rng.random_range(0..3usize) } else { rng.random_range(0..4usize) };
    (0..len)
        .map(|_| {
            if terminal_biased || rng.random_bool(0.5) {
                if rng.random_bool(0.5) { "a".to_string() } else { "b".to_string() }
            } else {
                nts[rng.random_range(0..nts.len())].clone()
            }
        })
        .collect()
}

#[test]
fn agreement_on_python_corpus() {
    let cfg = grammars::python::cfg();
    let earley = EarleyParser::new(&cfg);
    let glr = GlrParser::new(&cfg);
    let mut pwd = Compiled::compile(&cfg, ParserConfig::improved());
    for seed in 0..4 {
        let src = gen::python_source(150, seed);
        let lexemes = derp::lex::tokenize_python(&src).unwrap();
        let pwd_ans = pwd.recognize_lexemes(&lexemes).unwrap();
        pwd.lang.reset();
        let earley_ans = earley.recognize_lexemes(&lexemes).unwrap();
        let glr_ans = glr.recognize_lexemes(&lexemes).unwrap();
        assert!(pwd_ans, "seed {seed}: corpus must be valid\n{src}");
        assert_eq!(pwd_ans, earley_ans, "seed {seed}");
        assert_eq!(earley_ans, glr_ans, "seed {seed}");
    }
}

#[test]
fn python_rejections_agree() {
    let cfg = grammars::python::cfg();
    let earley = EarleyParser::new(&cfg);
    let glr = GlrParser::new(&cfg);
    let mut pwd = Compiled::compile(&cfg, ParserConfig::improved());
    for src in [
        "def f(:\n    pass\n",
        "x = = 1\n",
        "if x\n    pass\n",
        "return 1 +\n",
        "class :\n    pass\n",
    ] {
        let lexemes = derp::lex::tokenize_python(src).unwrap();
        let pwd_ans = pwd.recognize_lexemes(&lexemes).unwrap();
        pwd.lang.reset();
        assert!(!pwd_ans, "{src:?} should be rejected");
        assert_eq!(pwd_ans, earley.recognize_lexemes(&lexemes).unwrap(), "{src:?}");
        assert_eq!(pwd_ans, glr.recognize_lexemes(&lexemes).unwrap(), "{src:?}");
    }
}
