//! Random-edit-script differential testing for [`Session::splice_tokens`]:
//! a session that absorbs an arbitrary interleaving of splices, user
//! checkpoints, and rollbacks must be observationally identical to parsing
//! the resulting token sequence from scratch — same verdicts after every
//! edit, same canonical forest fingerprints at the end — across all three
//! parser families, both PWD memo keyings, and both recognize engines
//! (lazy automaton and interpreted). Error recovery is mutually exclusive
//! with incremental mode, so diagnostic parity is structural: a spliced
//! session emits exactly the diagnostics a scratch session would — none.

use derp::api::{backend_by_name, backends, Checkpoint, ParseCount, Parser, PwdBackend, Session};
use derp::core::{AutomatonMode, MemoKeying, ParseMode, ParserConfig};
use derp::grammar::{random_cfg, random_input, remove_useless, CfgBuilder, RandomCfgConfig};

/// Deterministic xorshift64 — the differential suite must replay exactly
/// from its seeds, and the crate deliberately has no `rand` dependency.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (self.next() % n as u64) as usize
    }
}

/// The full arm roster: the standard four-parser roster (forest-capable),
/// the class-keyed PWD variant, and the two recognize-only PWD engines.
/// The `bool` marks forest-capable arms.
fn arms(cfg: &derp::grammar::Cfg) -> Vec<(Box<dyn Parser>, bool)> {
    let mut arms: Vec<(Box<dyn Parser>, bool)> =
        backends(cfg).into_iter().map(|b| (b, true)).collect();
    let class_keyed = ParserConfig { keying: MemoKeying::ByClass, ..ParserConfig::improved() };
    arms.push((Box::new(PwdBackend::with_config(cfg, class_keyed, "pwd-class-keyed")), true));
    arms.push((backend_by_name("pwd-dfa", cfg).expect("roster name"), false));
    let interp = ParserConfig {
        mode: ParseMode::Recognize,
        automaton: AutomatonMode::Off,
        ..ParserConfig::improved()
    };
    arms.push((Box::new(PwdBackend::with_config(cfg, interp, "pwd-recognize-interp")), false));
    arms
}

/// A saved user checkpoint plus the token model it snapshots (the model at
/// checkpoint time IS the first `tokens_fed` tokens, by construction).
struct Saved {
    pos: usize,
    cp: Checkpoint,
    model: Vec<String>,
}

#[test]
fn random_edit_scripts_match_scratch_reparses() {
    let shape = RandomCfgConfig::default();
    let mut spliced = 0usize;
    let mut rolled_back = 0usize;
    let mut checked = 0usize;
    for seed in 0..10u64 {
        let Ok(cfg) = remove_useless(&random_cfg(&shape, seed)) else { continue };
        for (arm_idx, (arm, forests)) in arms(&cfg).iter_mut().enumerate() {
            let name = arm.name();
            let mut scratch = arm.fork();
            let mut s = Session::open(&mut **arm).unwrap();
            s.enable_incremental().unwrap();
            let mut model: Vec<String> = random_input(&cfg, 8, seed * 10_007 + 1);
            let refs: Vec<&str> = model.iter().map(String::as_str).collect();
            s.feed_all(&refs).unwrap();
            let mut rng = Rng::new(seed * 7919 + arm_idx as u64);
            let mut saved: Vec<Saved> = Vec::new();
            for step in 0..12u64 {
                match rng.below(5) {
                    // Take a user checkpoint at the current position.
                    0 => {
                        saved.push(Saved {
                            pos: s.tokens_fed(),
                            cp: s.checkpoint().unwrap(),
                            model: model.clone(),
                        });
                    }
                    // Roll back to a random surviving checkpoint.
                    1 if !saved.is_empty() => {
                        let idx = rng.below(saved.len());
                        let target = saved[idx].pos;
                        s.rollback(&saved[idx].cp).unwrap();
                        model = saved[idx].model.clone();
                        // Checkpoints above the restored position die.
                        saved.retain(|sv| sv.pos <= target);
                        rolled_back += 1;
                    }
                    // Splice a random edit: replace `remove` tokens at `at`
                    // with a slice of a random valid sentence (guaranteed
                    // known terminal kinds).
                    _ => {
                        let at = rng.below(model.len() + 1);
                        let remove = rng.below(model.len() - at + 1).min(3);
                        let donor = random_input(&cfg, 6, seed * 65_537 + step + 2);
                        let take = rng.below(donor.len().min(3) + 1);
                        let insert = &donor[..take];
                        let pairs: Vec<(&str, &str)> =
                            insert.iter().map(|t| (t.as_str(), t.as_str())).collect();
                        let out = s.splice_tokens(at, remove, &pairs).unwrap();
                        model.splice(at..at + remove, insert.iter().cloned());
                        assert_eq!(
                            out.refed + out.reused,
                            model.len(),
                            "{name}: splice accounting must cover the stream: {out:?}"
                        );
                        // The rung restore follows rollback timeline
                        // semantics: user checkpoints above it die.
                        saved.retain(|sv| sv.pos <= out.rung);
                        spliced += 1;
                    }
                }
                // After every operation the session must agree byte-for-byte
                // with a scratch parse of the model it now represents.
                assert_eq!(s.tokens_fed(), model.len(), "{name}: position drift");
                let refs: Vec<&str> = model.iter().map(String::as_str).collect();
                assert_eq!(
                    s.prefix_is_sentence().unwrap(),
                    scratch.recognize(&refs).unwrap(),
                    "{name}: seed {seed} step {step}: edited session diverged \
                     from scratch on {refs:?}\n{cfg}"
                );
                checked += 1;
            }
            // Forest-capable arms must also build the *same forest* as a
            // scratch parse — canonical fingerprint equality, not just the
            // verdict.
            if *forests {
                let refs: Vec<&str> = model.iter().map(String::as_str).collect();
                let scratch_summary = scratch.parse_forest(&refs).unwrap().summary();
                let spliced_summary = s.finish_forest().unwrap().summary();
                assert_eq!(
                    spliced_summary.count, scratch_summary.count,
                    "{name}: seed {seed}: tree counts diverged on {refs:?}"
                );
                if spliced_summary.count != ParseCount::Infinite {
                    assert_eq!(
                        spliced_summary.fingerprint, scratch_summary.fingerprint,
                        "{name}: seed {seed}: spliced forest differs from scratch on {refs:?}"
                    );
                }
            }
        }
    }
    assert!(checked > 500, "coverage sanity: {checked} comparisons");
    assert!(spliced > 200, "edit-coverage sanity: {spliced} splices");
    assert!(rolled_back > 20, "rollback-coverage sanity: {rolled_back} rollbacks");
}

/// On long streams, convergent single-token edits stay local: the refeed
/// cost is bounded by the ladder stride plus the convergence check, not the
/// suffix length — on both recognize engines (the automaton's interned
/// state ids and the interpreted engine's graph digests).
#[test]
fn convergent_splices_stay_local_on_long_streams() {
    let mut g = CfgBuilder::new("S");
    g.terminal("a");
    g.rule("S", &["S", "S"]);
    g.rule("S", &["a"]);
    let cfg = g.build().unwrap();
    let interp = ParserConfig {
        mode: ParseMode::Recognize,
        automaton: AutomatonMode::Off,
        ..ParserConfig::improved()
    };
    let mut arms: Vec<Box<dyn Parser>> = vec![
        backend_by_name("pwd-dfa", &cfg).unwrap(),
        Box::new(PwdBackend::with_config(&cfg, interp, "pwd-recognize-interp")),
    ];
    const LEN: usize = 600;
    for arm in &mut arms {
        let name = arm.name();
        let mut s = Session::open(&mut **arm).unwrap();
        s.enable_incremental().unwrap();
        s.feed_all(&["a"; LEN]).unwrap();
        let mut rng = Rng::new(0xDEC0DE);
        for _ in 0..20 {
            // Same-class single-token replacement anywhere in the buffer:
            // the post-edit state realigns with the memoized pre-edit state
            // immediately, so the whole suffix is skipped.
            let at = rng.below(LEN - 1);
            let out = s.splice_tokens(at, 1, &[("a", "a")]).unwrap();
            assert!(out.converged_at.is_some(), "{name}: no convergence at {at}: {out:?}");
            assert!(
                out.refed <= 16,
                "{name}: refeed not local at {at} (rung {}): {out:?}",
                out.rung
            );
            assert_eq!(s.tokens_fed(), LEN, "{name}");
        }
        let m = s.metrics();
        assert!(
            m.tokens_refed <= 20 * 16,
            "{name}: cumulative refeed exploded: {}",
            m.tokens_refed
        );
        assert!(m.tokens_reused >= 20 * (LEN as u64 - 16), "{name}: {}", m.tokens_reused);
        assert!(s.finish().unwrap(), "{name}: a^{LEN} stays accepted through the edits");
    }
}
