//! Observability accounting properties: the per-phase histograms `pwd-obs`
//! aggregates are *exactly* additive — a fleet total assembled with
//! `PhaseStats::merge` from per-fork snapshots equals the scalar sums of
//! its parts to the last sample and nanosecond, in any merge order — and
//! span counts are workload-determined: a batch recognition and a
//! chunked-streaming session of the same input record the same derive
//! spans, exactly one per fed token.
//!
//! The same contract holds one layer up: a `ParseService` batch fans out
//! over worker threads that each keep local histogram samples and fold
//! them into the shared store once — the exposed request/execute counts
//! must equal the number of inputs, with no sample lost or double-counted
//! in the fold.
#![cfg(feature = "obs")]

use derp::api::{Parser, PwdBackend, Session};
use derp::core::{AutomatonMode, MemoKeying, ParserConfig};
use derp::grammar::{gen, grammars};
use derp::obs::{Phase, PhaseStats};
use proptest::prelude::*;
use pwd_lex::Lexeme;
use pwd_serve::{Input, ParseService, ServiceConfig};

/// The engine under test: class-keyed, automaton off. With the lazy
/// automaton on, warm tokens step through dense table rows and record *no*
/// derive span, which would make span counts depend on table warmth rather
/// than on the workload — the property below needs one derive span per
/// token, deterministically.
fn prototype() -> PwdBackend {
    let config = ParserConfig {
        keying: MemoKeying::ByClass,
        automaton: AutomatonMode::Off,
        ..ParserConfig::improved()
    };
    PwdBackend::with_config(&grammars::pl0::cfg(), config, "pwd-obs-accounting")
}

/// Small lexeme-diverse PL/0 programs (deterministic per seed).
fn corpus(n: usize, seed: u64) -> Vec<Vec<Lexeme>> {
    let lx = grammars::pl0::lexer();
    (0..n)
        .map(|i| {
            let src = gen::pl0_source(20 + 10 * (i % 3), seed + i as u64, 0.1);
            lx.tokenize(&src).expect("generated PL/0 tokenizes")
        })
        .collect()
}

/// Feeds one input through a fresh streaming session on `backend` and
/// returns the per-phase histograms the run recorded (snapshot taken while
/// the session is still open, so it covers exactly the feeds).
fn streamed_phases(backend: &mut dyn Parser, lexemes: &[Lexeme]) -> PhaseStats {
    backend.set_obs(true);
    let mut session = Session::open(backend).expect("no session already open");
    for lx in lexemes {
        session.feed(&lx.kind, &lx.text).expect("grammar kind feeds");
    }
    let phases = *session.metrics().phases.expect("observability is enabled");
    session.finish().expect("session finishes");
    phases
}

/// Runs one input as a single batch call and returns the recorded phases.
fn batch_phases(backend: &mut dyn Parser, lexemes: &[Lexeme]) -> PhaseStats {
    backend.set_obs(true);
    assert!(backend.recognize_lexemes(lexemes).expect("corpus parses"), "corpus accepts");
    *backend.metrics().phases.expect("observability is enabled")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fork-fleet additivity: distribute a workload over forked sessions
    /// (the pool's unit of concurrency), snapshot each run's histograms,
    /// and assemble the fleet total two ways — `PhaseStats::merge` in two
    /// different orders, and independent scalar sums of each phase's
    /// count/sum. All three agree exactly, and the fleet derive count is
    /// the workload's token count.
    #[test]
    fn fork_fleet_histograms_are_exactly_additive(
        seed in 0u64..1000,
        forks in 1usize..4,
        n_inputs in 1usize..7,
    ) {
        let inputs = corpus(n_inputs, 0xACC0 + seed);
        let proto = prototype();
        let mut fleet: Vec<Box<dyn Parser>> = (0..forks).map(|_| proto.fork()).collect();

        // Round-robin the inputs over the forks, one snapshot per run.
        let mut parts: Vec<PhaseStats> = Vec::new();
        for (i, lexemes) in inputs.iter().enumerate() {
            parts.push(streamed_phases(&mut *fleet[i % forks], lexemes));
        }

        // Fleet total, folded forward and folded in reverse.
        let mut forward = PhaseStats::new();
        for p in &parts {
            forward.merge(p);
        }
        let mut reverse = PhaseStats::new();
        for p in parts.iter().rev() {
            reverse.merge(p);
        }
        prop_assert_eq!(&forward, &reverse, "merge order must not matter");

        // Merge agrees with the scalar sums, phase by phase, exactly.
        for phase in Phase::ALL {
            let count: u64 = parts.iter().map(|p| p.get(phase).count()).sum();
            let sum: u64 = parts.iter().map(|p| p.get(phase).sum()).sum();
            prop_assert_eq!(forward.get(phase).count(), count, "{} count", phase);
            prop_assert_eq!(forward.get(phase).sum(), sum, "{} sum", phase);
        }

        // The derive histogram counts the workload: one span per fed token.
        let tokens: u64 = inputs.iter().map(|l| l.len() as u64).sum();
        prop_assert_eq!(forward.get(Phase::Derive).count(), tokens);
    }

    /// Batch vs chunked streaming: the same input run as one batch call
    /// and as a token-by-token session on identical forks records the same
    /// number of spans in every engine phase — span counts come from the
    /// workload, not from how the tokens arrived.
    #[test]
    fn batch_and_streamed_runs_record_identical_span_counts(seed in 0u64..1000) {
        let inputs = corpus(3, 0xBA7C + seed);
        let proto = prototype();
        for lexemes in &inputs {
            let batch = batch_phases(&mut *proto.fork(), lexemes);
            let streamed = streamed_phases(&mut *proto.fork(), lexemes);
            for phase in Phase::ALL {
                prop_assert_eq!(
                    batch.get(phase).count(),
                    streamed.get(phase).count(),
                    "{} span count (batch vs streamed)", phase
                );
            }
            prop_assert_eq!(batch.get(Phase::Derive).count(), lexemes.len() as u64);
        }
    }
}

/// Sums every sample of a Prometheus counter/histogram series (across all
/// label sets) out of a `metrics_text()` exposition.
fn series_total(text: &str, series: &str) -> u64 {
    text.lines()
        .filter(|l| l.starts_with(series) && (l.as_bytes().get(series.len()) == Some(&b'{')))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().expect("integer sample"))
        .sum()
}

/// Service-level fold: a multi-worker batch must surface exactly one
/// queue-wait and one execute sample per input in `metrics_text()` — the
/// per-worker local histograms lose nothing in the fold — plus one
/// whole-batch request sample.
#[test]
fn service_batch_obs_counts_survive_the_worker_fold() {
    let service = ParseService::new(ServiceConfig {
        workers: 3,
        observability: true,
        ..ServiceConfig::default()
    });
    let cfg = grammars::pl0::cfg();
    let lx = grammars::pl0::lexer();
    let inputs: Vec<Input> = (0..10)
        .map(|i| {
            let src = gen::pl0_source(20, 0x0B5 + i as u64, 0.1);
            Input::from_lexemes(lx.tokenize(&src).expect("tokenizes"))
        })
        .collect();
    let report = service.submit_batch(&cfg, &inputs).expect("batch runs");
    assert_eq!(report.outcomes.len(), inputs.len());

    let text = service.metrics_text();
    let queued = series_total(&text, "pwd_serve_queue_wait_ns_count");
    let executed = series_total(&text, "pwd_serve_execute_ns_count");
    let requests = series_total(&text, "pwd_serve_request_duration_ns_count");
    assert_eq!(queued, inputs.len() as u64, "one queue-wait sample per input\n{text}");
    assert_eq!(executed, inputs.len() as u64, "one execute sample per input\n{text}");
    assert_eq!(requests, 1, "one whole-batch request sample\n{text}");
}
