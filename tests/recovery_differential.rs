//! Differential testing of the recovery engine across parser families:
//! the same bounded-repair search drives PWD, Earley, and GLR through one
//! [`Session`] interface, so on the same damaged input every backend must
//! tell the same story — same recovered verdict, same number of
//! diagnostics, and the same primary (first) error location and repair.
//!
//! The second half is the zero-interference guarantee: on **clean** input,
//! a recovery-enabled session is byte-identical to a recovery-off one —
//! same verdict, same canonical forest fingerprint, zero diagnostics.

use derp::api::{backends, PwdBackend, Recognizer, Session};
use derp::grammar::{gen, grammars};
use derp::lex::Lexeme;
use derp::{RecoveryBudget, RepairKind};

/// Deterministic split-mix RNG (same scheme as the corpus gate).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

const SUBSTITUTES: &[(&str, &str)] = &[
    (";", ";"),
    (".", "."),
    ("then", "then"),
    ("do", "do"),
    ("end", "end"),
    (")", ")"),
    ("(", "("),
    (":=", ":="),
    ("NUM", "99"),
];

fn mutate(rng: &mut Rng, clean: &[Lexeme]) -> Vec<Lexeme> {
    let mut toks = clean.to_vec();
    for _ in 0..rng.below(3) + 1 {
        if toks.len() < 2 {
            break;
        }
        let i = rng.below(toks.len());
        match rng.below(3) {
            0 => {
                toks.remove(i);
            }
            1 => {
                let dup = toks[i].clone();
                toks.insert(i, dup);
            }
            _ => {
                let (kind, text) = SUBSTITUTES[rng.below(SUBSTITUTES.len())];
                if toks[i].kind != kind {
                    toks[i].kind = kind.to_string();
                    toks[i].text = text.to_string();
                }
            }
        }
    }
    toks
}

fn kinds_of(toks: &[Lexeme]) -> Vec<&str> {
    toks.iter().map(|l| l.kind.as_str()).collect()
}

/// The primary (first) error, as (token index, span bounds, repair).
type Primary = (usize, Option<(usize, usize)>, Option<RepairKind>);

/// What one backend reports about one damaged input, reduced to the facts
/// every backend must agree on. Expected-kind lists are deliberately
/// excluded: each family reports its frontier in its own vocabulary.
#[derive(Debug, PartialEq, Eq)]
struct Report {
    verdict: bool,
    diag_count: usize,
    primary: Option<Primary>,
}

fn report(backend: &mut dyn derp::api::Parser, input: &[Lexeme]) -> Report {
    let mut session = Session::open(backend).expect("fresh session");
    session.enable_recovery(RecoveryBudget::default());
    let (verdict, diags) = session
        .feed_lexemes(input)
        .and_then(|_| session.finish_with_diagnostics())
        .expect("recovery sessions don't error on known kinds");
    Report {
        verdict,
        diag_count: diags.len(),
        primary: diags.first().map(|d| {
            (
                d.token_index,
                d.span.map(|s| (s.start, s.end)),
                d.repair.as_ref().map(|r| r.kind.clone()),
            )
        }),
    }
}

/// Seeded mutants of PL/0 programs: all backends in the roster produce the
/// same recovered verdict, the same diagnostic count, and the same primary
/// error (token index, span, repair) as the PWD reference.
#[test]
fn backends_agree_on_recovered_verdicts_and_primary_diagnostics() {
    const N: usize = 150;
    let cfg = grammars::pl0::cfg();
    let lexer = grammars::pl0::lexer();
    let mut oracle = PwdBackend::improved(&cfg);
    let mut rng = Rng(0xD1FF_0008);
    let mut corpus: Vec<Vec<Lexeme>> = Vec::new();
    let mut attempts = 0usize;
    while corpus.len() < N {
        attempts += 1;
        assert!(attempts < N * 20, "corpus generation stalled at {}", corpus.len());
        let src = gen::pl0_source(16 + rng.below(14), rng.next(), 0.6);
        let Ok(clean) = lexer.tokenize(&src) else { continue };
        let mutant = mutate(&mut rng, &clean);
        if oracle.recognize(&kinds_of(&mutant)).map_or(true, |accepted| accepted) {
            continue;
        }
        corpus.push(mutant);
    }

    let mut roster = backends(&cfg);
    let mut agreements = 0usize;
    for (i, mutant) in corpus.iter().enumerate() {
        let mut reports = Vec::new();
        for backend in roster.iter_mut() {
            let name = backend.name();
            reports.push((name, report(backend.as_mut(), mutant)));
        }
        let (ref_name, reference) = &reports[0];
        for (name, rep) in &reports[1..] {
            assert_eq!(
                rep,
                reference,
                "mutant #{i} {:?}: {name} diverges from {ref_name}",
                kinds_of(mutant)
            );
        }
        agreements += 1;
    }
    assert_eq!(agreements, N);
}

/// Clean inputs with recovery enabled: zero diagnostics, and the verdict
/// and canonical forest fingerprint are identical to a recovery-off
/// session — proof that the recovery plumbing (checkpointing, lookahead
/// windows, EOF completion probing) never perturbs a healthy parse.
#[test]
fn clean_inputs_are_byte_identical_with_recovery_on() {
    let cfg = grammars::pl0::cfg();
    let lexer = grammars::pl0::lexer();
    let mut rng = Rng(0xC1EA_0008);
    let programs: Vec<Vec<Lexeme>> = (0..30)
        .map(|_| {
            let src = gen::pl0_source(14 + rng.below(20), rng.next(), 0.5);
            lexer.tokenize(&src).expect("generated PL/0 tokenizes")
        })
        .collect();
    for backend in backends(&cfg).iter_mut() {
        let name = backend.name();
        for (i, program) in programs.iter().enumerate() {
            let mut off_session = Session::open(backend.as_mut()).expect("fresh session");
            let (off_forest, off_diags) = off_session
                .feed_lexemes(program)
                .and_then(|_| off_session.finish_forest_diagnostics())
                .unwrap_or_else(|e| panic!("{name} #{i} recovery-off: {e}"));

            let mut on_session = Session::open(backend.as_mut()).expect("fresh session");
            on_session.enable_recovery(RecoveryBudget::default());
            let (on_forest, on_diags) = on_session
                .feed_lexemes(program)
                .and_then(|_| on_session.finish_forest_diagnostics())
                .unwrap_or_else(|e| panic!("{name} #{i} recovery-on: {e}"));

            assert!(off_diags.is_empty(), "{name} #{i}: recovery-off diagnostics");
            assert!(
                on_diags.is_empty(),
                "{name} #{i}: clean input produced diagnostics under recovery: {on_diags:?}"
            );
            assert!(off_forest.has_tree(), "{name} #{i}: clean program must parse");
            assert_eq!(
                on_forest.fingerprint(),
                off_forest.fingerprint(),
                "{name} #{i}: forest fingerprint differs with recovery enabled"
            );
        }
    }
}
