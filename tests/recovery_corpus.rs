//! Corpus acceptance gate for error recovery: on a 1000-program corpus of
//! token-mutated PL/0 (1–3 mutations each, filtered to genuinely malformed
//! inputs), every backend in the roster must repair at least 90% of the
//! corpus to a **non-empty forest** with at least one **spanned**
//! diagnostic, inside the default [`RecoveryBudget`].
//!
//! This is the paper-facing robustness claim in executable form: bounded
//! local repair (skip/insert/substitute plus the end-of-input completion
//! search) is enough to resume real-language parses after the kind of
//! damage an editor sees mid-keystroke — not just on PWD, but uniformly
//! across the Earley and GLR baselines driving the same recovery engine.

use derp::api::{backends, PwdBackend, Recognizer, Session};
use derp::grammar::{gen, grammars};
use derp::lex::Lexeme;
use derp::RecoveryBudget;

/// Deterministic split-mix RNG — keeps the corpus identical across runs
/// and platforms without pulling in an RNG dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Wrong-token pool for substitution mutations: grammar terminals with
/// plausible texts, so the mutant stays lexable but (usually) unparsable.
const SUBSTITUTES: &[(&str, &str)] = &[
    (";", ";"),
    (".", "."),
    ("then", "then"),
    ("do", "do"),
    ("end", "end"),
    (")", ")"),
    ("(", "("),
    (":=", ":="),
    ("NUM", "99"),
    ("+", "+"),
    ("odd", "odd"),
    ("]", "]"),
];

/// Applies 1–3 token-level mutations (delete / duplicate / substitute) to
/// a lexed program. Offsets of surviving tokens are kept, so diagnostics
/// still point into the original source.
fn mutate(rng: &mut Rng, clean: &[Lexeme]) -> Vec<Lexeme> {
    let mut toks = clean.to_vec();
    for _ in 0..rng.below(3) + 1 {
        if toks.len() < 2 {
            break;
        }
        let i = rng.below(toks.len());
        match rng.below(3) {
            0 => {
                toks.remove(i);
            }
            1 => {
                let dup = toks[i].clone();
                toks.insert(i, dup);
            }
            _ => {
                let (kind, text) = SUBSTITUTES[rng.below(SUBSTITUTES.len())];
                if toks[i].kind != kind {
                    toks[i].kind = kind.to_string();
                    toks[i].text = text.to_string();
                }
            }
        }
    }
    toks
}

fn kinds_of(toks: &[Lexeme]) -> Vec<&str> {
    toks.iter().map(|l| l.kind.as_str()).collect()
}

/// Builds the corpus: `n` mutants that a recovery-off parse genuinely
/// rejects (mutations that happen to stay inside the language are
/// discarded — there would be nothing to recover from).
fn malformed_corpus(n: usize) -> Vec<(String, Vec<Lexeme>)> {
    let cfg = grammars::pl0::cfg();
    let lexer = grammars::pl0::lexer();
    let mut oracle = PwdBackend::improved(&cfg);
    let mut rng = Rng(0x5EED_0008);
    let mut corpus = Vec::new();
    let mut attempts = 0usize;
    while corpus.len() < n {
        attempts += 1;
        assert!(attempts < n * 20, "corpus generation stalled at {}", corpus.len());
        let src = gen::pl0_source(18 + rng.below(16), rng.next(), 0.6);
        let Ok(clean) = lexer.tokenize(&src) else { continue };
        let mutant = mutate(&mut rng, &clean);
        // Recovery-off oracle: keep only genuinely malformed mutants.
        if oracle.recognize(&kinds_of(&mutant)).map_or(true, |accepted| accepted) {
            continue;
        }
        corpus.push((src, mutant));
    }
    corpus
}

#[test]
fn ninety_percent_of_mutants_recover_with_spanned_diagnostics() {
    const N: usize = 1000;
    let cfg = grammars::pl0::cfg();
    let corpus = malformed_corpus(N);

    for backend in backends(&cfg).iter_mut() {
        let name = backend.name();
        let mut recovered = 0usize;
        let mut first_failure: Option<String> = None;
        for (src, mutant) in &corpus {
            let mut session = Session::open(backend.as_mut()).expect("fresh session");
            session.enable_recovery(RecoveryBudget::default());
            let ok = session
                .feed_lexemes(mutant)
                .and_then(|_| session.finish_forest_diagnostics())
                .map(|(forest, diags)| {
                    if std::env::var("CORPUS_DEBUG").is_ok()
                        && !(forest.has_tree() && diags.iter().any(|d| d.span.is_some()))
                    {
                        println!(
                            "FAIL tree={} spanned={} ndiags={} kinds={:?} msgs={:?}",
                            forest.has_tree(),
                            diags.iter().any(|d| d.span.is_some()),
                            diags.len(),
                            kinds_of(mutant),
                            diags.iter().map(|d| d.message.as_str()).collect::<Vec<_>>()
                        );
                    }
                    forest.has_tree() && diags.iter().any(|d| d.span.is_some())
                })
                .unwrap_or(false);
            if ok {
                recovered += 1;
            } else if first_failure.is_none() {
                first_failure = Some(format!("{src:?} -> {:?}", kinds_of(mutant)));
            }
        }
        let pct = recovered as f64 / corpus.len() as f64 * 100.0;
        assert!(
            recovered * 10 >= corpus.len() * 9,
            "{name}: only {recovered}/{} mutants ({pct:.1}%) recovered to a \
             non-empty forest with a spanned diagnostic; first failure: {}",
            corpus.len(),
            first_failure.as_deref().unwrap_or("-"),
        );
    }
}
