//! Cross-validation of the two derivative-based automata in the workspace:
//! for *regular* grammars, the pwd-core lazy derivative automaton (grammar
//! graph → dense transition rows, built lazily during recognition) must
//! accept exactly the language of the pwd-regex `Dfa` (regex → DFA via
//! Brzozowski derivatives, built eagerly). Each regular language is written
//! once as a small regex AST and lowered both ways; membership is compared
//! exhaustively over all strings up to a length bound, and pwd-regex's
//! equivalence decision procedure (`equiv.rs`) is reused as the oracle for
//! which language pairs must coincide.

use derp::api::{PwdBackend, Recognizer};
use derp::core::{AutomatonMode, MemoKeying, ParseMode, ParserConfig};
use derp::grammar::{Cfg, CfgBuilder};
use pwd_regex::{alt, cat, ch, eps, equivalent, star, Dfa, Regex};

const ALPHABET: [char; 3] = ['a', 'b', 'c'];
const KINDS: [&str; 3] = ["a", "b", "c"];
const MAX_LEN: usize = 6;

/// A regex AST small enough to lower to both representations. No `Empty`
/// leaf: a CFG nonterminal with no productions is useless, and the empty
/// language has no interesting membership to compare.
#[derive(Clone)]
enum Rx {
    Ch(char),
    Eps,
    Cat(Box<Rx>, Box<Rx>),
    Alt(Box<Rx>, Box<Rx>),
    Star(Box<Rx>),
}

fn c(x: char) -> Rx {
    Rx::Ch(x)
}
fn e() -> Rx {
    Rx::Eps
}
fn k(a: Rx, b: Rx) -> Rx {
    Rx::Cat(Box::new(a), Box::new(b))
}
fn k3(a: Rx, b: Rx, z: Rx) -> Rx {
    k(k(a, b), z)
}
fn o(a: Rx, b: Rx) -> Rx {
    Rx::Alt(Box::new(a), Box::new(b))
}
fn s(a: Rx) -> Rx {
    Rx::Star(Box::new(a))
}

fn to_regex(rx: &Rx) -> Regex {
    match rx {
        Rx::Ch(x) => ch(*x),
        Rx::Eps => eps(),
        Rx::Cat(a, b) => cat(to_regex(a), to_regex(b)),
        Rx::Alt(a, b) => alt(to_regex(a), to_regex(b)),
        Rx::Star(a) => star(to_regex(a)),
    }
}

/// Lowers the AST to CFG rules (preorder, so the root lands on `R0`),
/// returning the nonterminal naming this subexpression. A star becomes the
/// right-recursive pair `R → ε | A R` — a regular grammar, exactly the
/// shape where the lazy automaton should reach a closed transition table.
fn lower(rx: &Rx, g: &mut CfgBuilder, next: &mut usize) -> String {
    let name = format!("R{next}");
    *next += 1;
    match rx {
        Rx::Ch(x) => {
            g.rule(&name, &[&x.to_string()]);
        }
        Rx::Eps => {
            g.rule(&name, &[]);
        }
        Rx::Cat(a, b) => {
            let an = lower(a, g, next);
            let bn = lower(b, g, next);
            g.rule(&name, &[&an, &bn]);
        }
        Rx::Alt(a, b) => {
            let an = lower(a, g, next);
            let bn = lower(b, g, next);
            g.rule(&name, &[&an]);
            g.rule(&name, &[&bn]);
        }
        Rx::Star(a) => {
            let an = lower(a, g, next);
            g.rule(&name, &[]);
            g.rule(&name, &[&an, &name]);
        }
    }
    name
}

fn to_cfg(rx: &Rx) -> Cfg {
    let mut g = CfgBuilder::new("R0");
    g.terminals(&KINDS);
    let mut next = 0usize;
    lower(rx, &mut g, &mut next);
    g.build().unwrap()
}

fn dfa_recognizer(cfg: &Cfg, automaton: AutomatonMode, max_rows: usize) -> PwdBackend {
    let config = ParserConfig {
        mode: ParseMode::Recognize,
        keying: MemoKeying::ByClass,
        automaton,
        automaton_max_rows: max_rows,
        ..ParserConfig::improved()
    };
    PwdBackend::with_config(cfg, config, "pwd-regular")
}

/// All strings over the alphabet up to `MAX_LEN`, as index sequences.
fn all_strings() -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new()];
    let mut frontier = vec![Vec::new()];
    for _ in 0..MAX_LEN {
        let mut next = Vec::new();
        for w in &frontier {
            for i in 0..ALPHABET.len() {
                let mut v = w.clone();
                v.push(i);
                next.push(v);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

fn text_of(w: &[usize]) -> String {
    w.iter().map(|&i| ALPHABET[i]).collect()
}

fn kinds_of(w: &[usize]) -> Vec<&'static str> {
    w.iter().map(|&i| KINDS[i]).collect()
}

/// The regular-language corpus: classic shapes exercising nesting, overlap
/// of alternatives, nullable stars, and multi-character follow constraints.
fn corpus() -> Vec<(&'static str, Rx)> {
    vec![
        ("a(b|c)*", k(c('a'), s(o(c('b'), c('c'))))),
        ("(ab)*", s(k(c('a'), c('b')))),
        ("(a|b)*abb", k3(s(o(c('a'), c('b'))), k(c('a'), c('b')), c('b'))),
        ("a*b*", k(s(c('a')), s(c('b')))),
        ("(a*b)*", s(k(s(c('a')), c('b')))),
        ("(a|b)*", s(o(c('a'), c('b')))),
        ("(a*b*c*)*", s(k3(s(c('a')), s(c('b')), s(c('c'))))),
        ("a(ba)*", k(c('a'), s(k(c('b'), c('a'))))),
        ("(ab)*a", k(s(k(c('a'), c('b'))), c('a'))),
        ("eps|abc", o(e(), k3(c('a'), c('b'), c('c')))),
        // Syntactically different but equivalent to "(a|b)*": exercises the
        // positive direction of the equivalence oracle below.
        ("(b|a)*", s(o(c('b'), c('a')))),
    ]
}

/// Exhaustive membership agreement: for every corpus language and every
/// string up to the length bound, the pwd-core lazy automaton (unbounded
/// and budget-starved) and the pwd-regex DFA give the same verdict.
#[test]
fn lazy_automaton_accepts_same_language_as_regex_dfa() {
    let strings = all_strings();
    for (label, rx) in corpus() {
        let dfa = Dfa::build(&to_regex(&rx));
        let cfg = to_cfg(&rx);
        let mut lazy = dfa_recognizer(&cfg, AutomatonMode::Lazy, usize::MAX);
        let mut starved = dfa_recognizer(&cfg, AutomatonMode::Lazy, 2);
        let mut interp = dfa_recognizer(&cfg, AutomatonMode::Off, usize::MAX);
        let mut accepted = 0usize;
        for w in &strings {
            let expect = dfa.accepts(&text_of(w));
            let kinds = kinds_of(w);
            assert_eq!(lazy.recognize(&kinds).unwrap(), expect, "{label}: {:?}", text_of(w));
            assert_eq!(starved.recognize(&kinds).unwrap(), expect, "{label} (starved): {kinds:?}");
            assert_eq!(interp.recognize(&kinds).unwrap(), expect, "{label} (interp): {kinds:?}");
            if expect {
                accepted += 1;
            }
        }
        assert!(accepted > 0, "{label}: corpus language must accept something under MAX_LEN");
        // The lazy automaton really did the recognizing: a regular grammar
        // must close into a finite warm table that serves table hits.
        let stats = lazy.compiled().lang.automaton_stats();
        assert!(stats.states > 0, "{label}: no states interned: {stats:?}");
        assert!(lazy.metrics().auto_table_hits > 0 || strings.is_empty(), "{label}");
    }
}

/// For regular grammars the lazy automaton *closes*: after one exhaustive
/// pass, a replay of every string is answered entirely from the table —
/// zero new rows, zero interpreted fallbacks.
#[test]
fn regular_grammars_close_into_a_finite_warm_table() {
    let strings = all_strings();
    for (label, rx) in corpus() {
        let cfg = to_cfg(&rx);
        let mut lazy = dfa_recognizer(&cfg, AutomatonMode::Lazy, usize::MAX);
        for w in &strings {
            let _ = lazy.recognize(&kinds_of(w)).unwrap();
        }
        let cold = lazy.compiled().lang.automaton_stats();
        assert!(!cold.frozen, "{label}: unbounded budget must never freeze");
        let mut warm_rows = 0u64;
        let mut warm_fallbacks = 0u64;
        for w in &strings {
            let _ = lazy.recognize(&kinds_of(w)).unwrap();
            let m = lazy.metrics();
            warm_rows += m.auto_rows_built;
            warm_fallbacks += m.auto_fallbacks;
        }
        assert_eq!(warm_rows, 0, "{label}: warm replay built rows");
        assert_eq!(warm_fallbacks, 0, "{label}: warm replay left the table");
        let warm = lazy.compiled().lang.automaton_stats();
        assert_eq!(warm.states, cold.states, "{label}: state count must be closed");
    }
}

/// The `equiv.rs` decision procedure is the oracle for *pairs*: whenever it
/// declares two corpus regexes equivalent, their grammar-side lazy automata
/// agree on every string; whenever it declares them distinct, some string
/// within the bound separates them and the grammar side separates them the
/// same way.
#[test]
fn equivalence_oracle_carries_over_to_grammar_automata() {
    let strings = all_strings();
    let corpus = corpus();
    let mut equivalent_pairs = 0usize;
    let mut separated_pairs = 0usize;
    for i in 0..corpus.len() {
        for j in (i + 1)..corpus.len() {
            let (la, ra) = (&corpus[i], &corpus[j]);
            let same = equivalent(&to_regex(&la.1), &to_regex(&ra.1));
            let mut pa = dfa_recognizer(&to_cfg(&la.1), AutomatonMode::Lazy, usize::MAX);
            let mut pb = dfa_recognizer(&to_cfg(&ra.1), AutomatonMode::Lazy, usize::MAX);
            let mut witness = None;
            for w in &strings {
                let kinds = kinds_of(w);
                let (va, vb) = (pa.recognize(&kinds).unwrap(), pb.recognize(&kinds).unwrap());
                if va != vb {
                    witness = Some(text_of(w));
                    break;
                }
            }
            if same {
                assert_eq!(
                    witness, None,
                    "equiv.rs says {} ≡ {} but the automata disagree",
                    la.0, ra.0
                );
                equivalent_pairs += 1;
            } else if witness.is_some() {
                // Distinct languages, and the bound was deep enough to
                // exhibit it — the common case for this corpus.
                separated_pairs += 1;
            }
        }
    }
    assert!(separated_pairs > 20, "separation sanity: {separated_pairs}");
    assert!(equivalent_pairs > 0, "the corpus plants at least one equivalent pair");
}
