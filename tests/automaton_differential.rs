//! Differential tests for the lazy derivative automaton (memo tier three):
//! with the automaton on, every observable — membership verdicts, per-token
//! viability, sentence-hood of each prefix, parse counts, forest
//! fingerprints — is byte-identical to the interpreted class-keyed path, to
//! the value-keyed path, and to the Earley/GLR baselines; identical across
//! chunked streaming with checkpoint/rollback excursions; and identical
//! across the row-budget fallback boundary (a tiny `automaton_max_rows`
//! that freezes the table mid-input and forces the interpreted fallback).

use derp::api::{backend_by_name, unanimous_forests, Parser, PwdBackend, Recognizer};
use derp::core::{AutomatonMode, MemoKeying, ParseMode, ParserConfig};
use derp::grammar::{random_cfg, random_input, remove_useless, Cfg, RandomCfgConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A recognize-mode PWD arm on one point of the automaton axis.
fn recognizer(
    cfg: &Cfg,
    automaton: AutomatonMode,
    keying: MemoKeying,
    max_rows: usize,
    label: &'static str,
) -> PwdBackend {
    let config = ParserConfig {
        mode: ParseMode::Recognize,
        keying,
        automaton,
        automaton_max_rows: max_rows,
        ..ParserConfig::improved()
    };
    PwdBackend::with_config(cfg, config, label)
}

/// The automaton axis under test: interpreted baseline, table walk,
/// budget-starved table walk (freezes after 2 rows, falling back to the
/// interpreted path mid-input), and the value-keyed arm the activity gate
/// keeps fully interpreted.
fn automaton_arms(cfg: &Cfg) -> Vec<PwdBackend> {
    vec![
        recognizer(cfg, AutomatonMode::Off, MemoKeying::ByClass, usize::MAX, "pwd-interp"),
        recognizer(cfg, AutomatonMode::Lazy, MemoKeying::ByClass, usize::MAX, "pwd-dfa"),
        recognizer(cfg, AutomatonMode::Lazy, MemoKeying::ByClass, 2, "pwd-dfa-starved"),
        recognizer(cfg, AutomatonMode::Lazy, MemoKeying::ByValue, usize::MAX, "pwd-value"),
    ]
}

/// Random grammars × random inputs, two passes per arm (the second pass
/// replays every input against warm transition rows): all automaton arms
/// agree with the interpreted baseline and with Earley and GLR on every
/// membership verdict.
#[test]
fn automaton_verdicts_match_interpreted_and_baselines() {
    let shape = RandomCfgConfig::default();
    let mut checked = 0usize;
    let mut accepted = 0usize;
    let mut warm_hits = 0u64;
    for seed in 0..40 {
        let Ok(cfg) = remove_useless(&random_cfg(&shape, seed)) else { continue };
        let mut arms = automaton_arms(&cfg);
        let mut baselines: Vec<Box<dyn Parser>> =
            ["earley", "glr"].iter().filter_map(|n| backend_by_name(n, &cfg)).collect();
        let inputs: Vec<Vec<String>> =
            (0..12).map(|i| random_input(&cfg, 8, seed * 1000 + i)).collect();
        // Two passes: pass 0 builds rows lazily, pass 1 must replay the
        // same inputs through the now-warm table with identical verdicts.
        for pass in 0..2 {
            for input in &inputs {
                let kinds: Vec<&str> = input.iter().map(String::as_str).collect();
                let reference = baselines[0].recognize(&kinds).unwrap();
                assert_eq!(
                    baselines[1].recognize(&kinds).unwrap(),
                    reference,
                    "glr vs earley: seed {seed}, {kinds:?}\n{cfg}"
                );
                for arm in &mut arms {
                    let got = arm.recognize(&kinds).unwrap();
                    assert_eq!(
                        got,
                        reference,
                        "{} pass {pass}: seed {seed}, {kinds:?}\n{cfg}",
                        arm.name()
                    );
                    if pass == 1 {
                        warm_hits += arm.metrics().auto_table_hits;
                    }
                }
                if reference {
                    accepted += 1;
                }
                checked += 1;
            }
        }
    }
    assert!(checked > 500, "coverage sanity: {checked} cases");
    assert!(accepted > 20, "acceptance sanity: {accepted} accepted of {checked}");
    assert!(warm_hits > 0, "warm passes must actually walk the table");
}

/// Feeds `kinds` through the trait session API in seeded random chunks with
/// speculative checkpoint → junk → rollback excursions, recording every
/// observable as it goes: per-token viability, per-token sentence-hood of
/// the fed prefix, and the final verdict. Lexeme texts are all distinct, so
/// class keying (and with it the automaton gate) is exercised adversarially.
fn drive_with_speculation(
    backend: &mut dyn Parser,
    kinds: &[&str],
    alphabet: &[String],
    rng_seed: u64,
) -> Vec<(bool, bool)> {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut obs = Vec::new();
    let mut uniq = 0usize;
    let feed = |backend: &mut dyn Parser, kind: &str, uniq: &mut usize| {
        *uniq += 1;
        let viable = backend.feed(kind, &format!("{kind}_{uniq}")).unwrap();
        (viable, backend.prefix_is_sentence().unwrap())
    };
    backend.begin().unwrap();
    let mut i = 0;
    loop {
        if rng.random_bool(0.4) && !alphabet.is_empty() {
            // Speculative excursion: the rollback must erase it exactly,
            // automaton state included (a checkpoint is still one NodeId).
            let cp = backend.checkpoint().unwrap();
            for _ in 0..rng.random_range(1..=3usize) {
                let junk = alphabet[rng.random_range(0..alphabet.len())].clone();
                obs.push(feed(backend, &junk, &mut uniq));
            }
            backend.rollback(&cp).unwrap();
            assert_eq!(backend.tokens_fed(), i, "rollback restores the position");
        }
        if i == kinds.len() {
            break;
        }
        let chunk = rng.random_range(1..=(kinds.len() - i).min(4));
        for k in &kinds[i..i + chunk] {
            obs.push(feed(backend, k, &mut uniq));
        }
        i += chunk;
    }
    let verdict = backend.end().unwrap();
    obs.push((verdict, verdict));
    obs
}

/// Chunked streaming with checkpoint/rollback: the full observation stream
/// (every per-token viability and sentence-hood bit, junk excursions
/// included) is byte-identical across the whole automaton axis, and the
/// final verdict also matches a batch Earley run.
#[test]
fn streamed_observations_identical_across_automaton_axis() {
    let shape = RandomCfgConfig::default();
    let mut checked = 0usize;
    for seed in 100..125 {
        let Ok(cfg) = remove_useless(&random_cfg(&shape, seed)) else { continue };
        let alphabet: Vec<String> =
            (0..cfg.terminal_count()).map(|t| cfg.terminal_name(t as u32).to_string()).collect();
        let mut arms = automaton_arms(&cfg);
        let mut earley = backend_by_name("earley", &cfg).unwrap();
        for input_seed in 0..8 {
            let input = random_input(&cfg, 8, seed * 311 + input_seed);
            let kinds: Vec<&str> = input.iter().map(String::as_str).collect();
            let script_seed = seed * 7919 + input_seed * 13;
            // The same seeded script replays against every arm, so the
            // streams are positionally comparable.
            let streams: Vec<Vec<(bool, bool)>> = arms
                .iter_mut()
                .map(|arm| drive_with_speculation(arm, &kinds, &alphabet, script_seed))
                .collect();
            for (arm, stream) in arms.iter().zip(&streams[1..]) {
                assert_eq!(
                    stream,
                    &streams[0],
                    "{}: stream diverges from interpreted on seed {seed}, {kinds:?}\n{cfg}",
                    arm.name()
                );
            }
            let verdict = streams[0].last().unwrap().0;
            assert_eq!(
                earley.recognize(&kinds).unwrap(),
                verdict,
                "earley batch vs streamed PWD: seed {seed}, {kinds:?}\n{cfg}"
            );
            checked += 1;
        }
    }
    assert!(checked > 100, "coverage sanity: {checked} cases");
}

/// The row-budget fallback boundary is exercised for real: with
/// `automaton_max_rows` so small the table freezes mid-input, verdicts stay
/// identical while the metrics prove the engine actually crossed from table
/// walk to interpreted fallback (frozen table, nonzero fallbacks, rows
/// capped at the budget).
#[test]
fn forced_fallback_crosses_budget_boundary_without_observable_effect() {
    let shape = RandomCfgConfig::default();
    let mut frozen_arms = 0usize;
    let mut fallbacks = 0u64;
    for seed in 200..220 {
        let Ok(cfg) = remove_useless(&random_cfg(&shape, seed)) else { continue };
        for max_rows in [1usize, 2, 3] {
            let mut interp =
                recognizer(&cfg, AutomatonMode::Off, MemoKeying::ByClass, usize::MAX, "interp");
            let mut starved =
                recognizer(&cfg, AutomatonMode::Lazy, MemoKeying::ByClass, max_rows, "starved");
            for input_seed in 0..8 {
                let input = random_input(&cfg, 10, seed * 577 + input_seed);
                let kinds: Vec<&str> = input.iter().map(String::as_str).collect();
                assert_eq!(
                    starved.recognize(&kinds).unwrap(),
                    interp.recognize(&kinds).unwrap(),
                    "budget {max_rows}: seed {seed}, {kinds:?}\n{cfg}"
                );
                fallbacks += starved.metrics().auto_fallbacks;
            }
            let stats = starved.compiled().lang.automaton_stats();
            assert!(stats.states <= max_rows, "budget respected: {stats:?}");
            if stats.frozen {
                frozen_arms += 1;
            }
        }
    }
    assert!(frozen_arms > 0, "some arm must actually hit the budget");
    assert!(fallbacks > 0, "some tokens must take the interpreted fallback");
}

/// Parse mode with the automaton axis on: the axis is inert outside
/// recognize mode, and the proof is forest-native — canonical fingerprints
/// and exact counts are unanimous across the standard roster plus PWD arms
/// with the automaton on under both keyings.
#[test]
fn parse_forests_unaffected_by_automaton_axis() {
    let shape = RandomCfgConfig::default();
    let mut checked = 0usize;
    for seed in 300..320 {
        let Ok(cfg) = remove_useless(&random_cfg(&shape, seed)) else { continue };
        let mut bs: Vec<Box<dyn Parser>> = derp::api::backends(&cfg);
        for (keying, automaton, label) in [
            (MemoKeying::ByClass, AutomatonMode::Lazy, "pwd-auto-class"),
            (MemoKeying::ByValue, AutomatonMode::Lazy, "pwd-auto-value"),
            (MemoKeying::ByClass, AutomatonMode::Off, "pwd-off-class"),
        ] {
            let config = ParserConfig { keying, automaton, ..ParserConfig::improved() };
            bs.push(Box::new(PwdBackend::with_config(&cfg, config, label)));
        }
        for input_seed in 0..10 {
            let input = random_input(&cfg, 7, seed * 419 + input_seed);
            let kinds: Vec<&str> = input.iter().map(String::as_str).collect();
            unanimous_forests(&mut bs, &kinds, &format!("automaton axis, seed {seed}"));
            checked += 1;
        }
    }
    assert!(checked > 150, "coverage sanity: {checked} cases");
}
