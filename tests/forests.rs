//! Forest semantics across configurations and corpora: parse-tree multisets
//! are configuration-invariant, fringes equal inputs, and cyclic forests
//! behave.

use derp::core::{
    CompactionMode, EnumLimits, MemoKeying, MemoStrategy, NullStrategy, ParseMode, ParserConfig,
    TreeCount,
};
use derp::grammar::{gen, grammars, Compiled};

fn tree_strings(
    cfg: &derp::grammar::Cfg,
    config: ParserConfig,
    kinds: &[(&str, &str)],
) -> Option<Vec<String>> {
    let mut c = Compiled::compile(cfg, config);
    let toks: Vec<_> = kinds.iter().map(|(k, l)| c.token(k, l).unwrap()).collect();
    let start = c.start;
    match c.lang.parse_trees(start, &toks, EnumLimits { max_trees: 64, max_depth: 512 }) {
        Ok(ts) => {
            let mut v: Vec<String> = ts.iter().map(|t| t.to_string()).collect();
            v.sort();
            Some(v)
        }
        Err(derp::core::PwdError::Rejected { .. }) => None,
        Err(e) => panic!("engine error: {e}"),
    }
}

/// Every engine configuration produces the identical sorted tree list for a
/// nontrivially ambiguous sentence.
#[test]
fn tree_sets_invariant_across_configs() {
    let cfg = grammars::ambiguous::expr();
    let input =
        [("n", "1"), ("+", "+"), ("n", "2"), ("*", "*"), ("n", "3"), ("+", "+"), ("n", "4")];
    let reference = tree_strings(&cfg, ParserConfig::improved(), &input).expect("accepted");
    assert!(reference.len() >= 4, "C₃ = 5 readings expected, got {}", reference.len());
    for nullability in [NullStrategy::Naive, NullStrategy::Worklist, NullStrategy::Labeled] {
        for compaction in
            [CompactionMode::None, CompactionMode::SeparatePass, CompactionMode::OnConstruction]
        {
            for memo in [MemoStrategy::FullHash, MemoStrategy::SingleEntry] {
                for keying in [MemoKeying::ByValue, MemoKeying::ByClass] {
                    let config = ParserConfig {
                        nullability,
                        compaction,
                        memo,
                        keying,
                        mode: ParseMode::Parse,
                        naming: false,
                        prepass_right_children: true,
                        max_nodes: None,
                        ..ParserConfig::improved()
                    };
                    let got = tree_strings(&cfg, config, &input).expect("accepted");
                    assert_eq!(got, reference, "{config:?}");
                }
            }
        }
    }
}

/// The fringe of every tree equals the input lexeme sequence — on the real
/// Python corpus through the real tokenizer.
#[test]
fn python_tree_fringe_roundtrip() {
    let cfg = grammars::python::cfg();
    let mut c = Compiled::compile(&cfg, ParserConfig::improved());
    let src = gen::python_source(120, 5);
    let lexemes = derp::lex::tokenize_python(&src).unwrap();
    let toks = c.tokens_from_lexemes(&lexemes).unwrap();
    let start = c.start;
    let tree = c
        .lang
        .parse_trees(start, &toks, EnumLimits { max_trees: 1, max_depth: 100_000 })
        .unwrap()
        .pop()
        .expect("at least one tree");
    let fringe = tree.fringe();
    let expected: Vec<String> = lexemes.iter().map(|l| l.text.clone()).collect();
    assert_eq!(fringe, expected, "tree fringe must reproduce the token stream");
}

/// JSON parse trees are unique and stable across repeated parses.
#[test]
fn json_unique_tree_stability() {
    let cfg = grammars::json::cfg();
    let lexer = grammars::json::lexer();
    let src = gen::json_source(80, 9);
    let lexemes = lexer.tokenize(&src).unwrap();
    let mut c = Compiled::compile(&cfg, ParserConfig::improved());
    let toks = c.tokens_from_lexemes(&lexemes).unwrap();
    let start = c.start;
    let t1 = c.lang.parse_unique(start, &toks).unwrap().expect("unambiguous");
    c.lang.reset();
    let t2 = c.lang.parse_unique(start, &toks).unwrap().expect("unambiguous");
    assert_eq!(t1, t2);
}

/// Catalan counting at larger n with forest-size polynomiality.
#[test]
fn catalan_counts_and_polynomial_forests() {
    let catalan: [u128; 13] = [1, 1, 2, 5, 14, 42, 132, 429, 1430, 4862, 16796, 58786, 208012];
    let cfg = grammars::ambiguous::catalan();
    let mut forest_sizes = Vec::new();
    for n in 1..=13usize {
        let mut c = Compiled::compile(&cfg, ParserConfig::improved());
        let toks: Vec<_> = (0..n).map(|_| c.token("a", "a").unwrap()).collect();
        let start = c.start;
        assert_eq!(
            c.lang.count_parses(start, &toks).unwrap(),
            TreeCount::Finite(catalan[n - 1]),
            "n={n}"
        );
        forest_sizes.push(c.lang.forest_count() as f64);
    }
    // Forest growth must be polynomial even though counts are exponential:
    // log-log slope of forest size should be ~2, certainly < 3.
    let slope = (forest_sizes[12] / forest_sizes[5]).log2() / (13.0f64 / 6.0).log2();
    assert!(slope < 3.0, "forest growth slope {slope}");
}

/// Infinite ambiguity: counting says infinite, enumeration is bounded, and
/// every enumerated tree still has the right fringe.
#[test]
fn infinitely_ambiguous_fringe_consistency() {
    let mut g = derp::grammar::CfgBuilder::new("S");
    g.terminal("a");
    g.rule("S", &[]);
    g.rule("S", &["S", "S"]);
    g.rule("S", &["a"]);
    let cfg = g.build().unwrap();
    let mut c = Compiled::compile(&cfg, ParserConfig::improved());
    let toks = vec![c.token("a", "a").unwrap(); 2];
    let start = c.start;
    let forest = c.lang.parse_forest(start, &toks).unwrap();
    assert_eq!(c.lang.count_of(forest), TreeCount::Infinite, "ε-cycles make this infinite");
    let trees = c.lang.trees_of(forest, EnumLimits { max_trees: 10, max_depth: 32 });
    assert!(!trees.is_empty());
    for t in trees {
        assert_eq!(t.fringe(), vec!["a", "a"], "bad fringe in {t}");
    }
}

/// Budget failure injection mid-parse leaves the engine reusable after
/// reset.
#[test]
fn budget_trip_then_reset_recovers() {
    let cfg = grammars::python::cfg();
    let config = ParserConfig { max_nodes: Some(4000), ..ParserConfig::improved() };
    let mut c = Compiled::compile(&cfg, config);
    let lexemes = derp::lex::tokenize_python(&gen::python_source(200, 3)).unwrap();
    let toks = c.tokens_from_lexemes(&lexemes).unwrap();
    let start = c.start;
    let err = c.lang.recognize(start, &toks).unwrap_err();
    assert!(matches!(err, derp::core::PwdError::NodeBudgetExceeded { .. }));
    c.lang.reset();
    // A small input fits the budget after reset.
    let small = derp::lex::tokenize_python("x = 1\n").unwrap();
    let toks = c.tokens_from_lexemes(&small).unwrap();
    assert!(c.lang.recognize(start, &toks).unwrap());
}

/// The `derivative` API exposes intermediate languages: D_w(L) accepts v
/// iff L accepts wv.
#[test]
fn derivative_api_is_compositional() {
    let cfg = grammars::arith::cfg();
    let mut c = Compiled::compile(&cfg, ParserConfig::improved());
    let w: Vec<_> =
        [("NUM", "1"), ("+", "+")].iter().map(|(k, l)| c.token(k, l).unwrap()).collect();
    let v: Vec<_> = [("NUM", "2"), ("*", "*"), ("NUM", "3")]
        .iter()
        .map(|(k, l)| c.token(k, l).unwrap())
        .collect();
    let start = c.start;
    let d = c.lang.derivative(start, &w).unwrap();
    assert!(c.lang.recognize(d, &v).unwrap(), "D_w(L) accepts v");
    let empty: Vec<derp::core::Token> = Vec::new();
    assert!(!c.lang.recognize(d, &empty).unwrap(), "\"1+\" is not a sentence");
}
