//! A backend-agnostic parser API over the three parser families.
//!
//! The PWD engine ([`Compiled`] + [`ParseSession`]), the Earley baseline
//! ([`EarleyParser`]) and the GLR baseline ([`GlrParser`]) historically
//! exposed ad-hoc, incompatible interfaces, forcing every differential test
//! and benchmark to carry per-backend driver code. This module gives all of
//! them one lifecycle:
//!
//! 1. [`Recognizer::prepare`] — compile a backend from a [`Cfg`];
//! 2. [`Recognizer::recognize`] / [`Recognizer::recognize_lexemes`] — run one
//!    input (each run starts from a clean slate);
//! 3. [`Parser::parse_count`] — count derivations, where supported;
//! 4. [`Recognizer::reset`] — return to the post-compile state. For the PWD
//!    backend this is the engine's O(1) epoch bump, so one compiled backend
//!    can serve an arbitrary stream of inputs without rebuild cost; the
//!    baselines are stateless and reset for free;
//! 5. [`Recognizer::metrics`] — uniform work counters for comparison.
//!
//! # Examples
//!
//! Race every backend on one input through the trait object interface:
//!
//! ```
//! use derp::api::{backends, Parser};
//! use derp::grammar::CfgBuilder;
//!
//! # fn main() -> Result<(), derp::api::BackendError> {
//! let mut g = CfgBuilder::new("S");
//! g.terminal("a");
//! g.rule("S", &["S", "S"]);
//! g.rule("S", &["a"]);
//! let cfg = g.build().expect("valid grammar");
//!
//! for backend in &mut backends(&cfg) {
//!     assert!(backend.recognize(&["a", "a", "a"])?);
//!     assert!(!backend.recognize(&[])?);
//! }
//! # Ok(())
//! # }
//! ```

use crate::core::{ParserConfig, PwdError};
use crate::earley::{EarleyParser, EarleyStats};
use crate::glr::{GlrParser, GlrStats};
use crate::grammar::{Cfg, Compiled};
use crate::lex::Lexeme;
use pwd_core::{ParseSession, Token};
use std::fmt;

/// An error from a parser backend: a malformed grammar, an input token
/// outside the grammar's alphabet, or an engine resource limit.
///
/// A plain non-match is **not** an error — it is `Ok(false)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendError {
    /// The backend that produced the error.
    pub backend: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl BackendError {
    fn new(backend: &'static str, message: impl fmt::Display) -> BackendError {
        BackendError { backend, message: message.to_string() }
    }
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.backend, self.message)
    }
}

impl std::error::Error for BackendError {}

/// The result of counting derivations of an input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseCount {
    /// The input has exactly this many parse trees (0 = rejected).
    Finite(u128),
    /// The grammar assigns infinitely many trees to this input.
    Infinite,
    /// The backend recognizes but cannot count (Earley and GLR here build no
    /// shared parse forest).
    Unsupported,
}

/// Uniform per-backend instrumentation.
///
/// `work` and `live_state` are backend-specific units — PWD counts `derive`
/// calls and grammar nodes, Earley counts chart items, GLR counts
/// graph-structured-stack nodes and edges — so they compare *growth*, not
/// absolute cost, across backends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendMetrics {
    /// Inputs run through `recognize`/`parse_count` since `prepare`.
    pub runs: u64,
    /// Work units spent on the most recent input.
    pub work: u64,
    /// Live state after the most recent input.
    pub live_state: u64,
    /// Work units answered from a memo/cache on the most recent input
    /// (PWD: `derive` calls served by the memo tables, including the
    /// class-template fast path). Zero for backends without a memo.
    pub memo_hits: u64,
    /// Work units that missed every cache and did real work on the most
    /// recent input (PWD: uncached `derive` calls).
    pub memo_misses: u64,
    /// Lexeme-independent derivative subgraphs shared verbatim with a new
    /// lexeme of the same terminal class (PWD class templates only).
    pub template_shares: u64,
    /// Derivatives of a repeat terminal class re-instantiated along the
    /// patch path to fresh leaves (PWD class templates, parse mode only).
    pub template_instantiations: u64,
}

/// A compiled recognizer with a uniform lifecycle.
///
/// Implementations must make every `recognize*` call independent: each run
/// observes the backend as freshly [`reset`](Recognizer::reset).
///
/// `Send + Sync` is a supertrait bound: a backend must be movable into a
/// worker thread and shareable behind `Arc` (all mutation goes through
/// `&mut self`, so `Sync` costs implementations nothing — it just rules out
/// un-shareable interior mutability). The `pwd-serve` subsystem pools
/// backends across threads on exactly this guarantee.
pub trait Recognizer: Send + Sync {
    /// Compiles a backend for a grammar with its default configuration.
    fn prepare(cfg: &Cfg) -> Self
    where
        Self: Sized;

    /// A stable display name (`"pwd-improved"`, `"earley"`, …).
    fn name(&self) -> &'static str;

    /// Does the grammar accept this sequence of terminal kinds?
    ///
    /// # Errors
    ///
    /// [`BackendError`] for kinds outside the grammar's alphabet or engine
    /// resource limits; rejection is `Ok(false)`.
    fn recognize(&mut self, kinds: &[&str]) -> Result<bool, BackendError>;

    /// Does the grammar accept this lexeme stream?
    ///
    /// The default forwards the lexeme *kinds* to
    /// [`recognize`](Recognizer::recognize); backends that key work on
    /// lexeme text (PWD's memo is keyed by token value) override this.
    ///
    /// # Errors
    ///
    /// Same as [`recognize`](Recognizer::recognize).
    fn recognize_lexemes(&mut self, lexemes: &[Lexeme]) -> Result<bool, BackendError> {
        let kinds: Vec<&str> = lexemes.iter().map(|l| l.kind.as_str()).collect();
        self.recognize(&kinds)
    }

    /// Returns the backend to its freshly-[`prepare`](Recognizer::prepare)d
    /// state. Cheap for every backend; for PWD it is a single epoch bump.
    fn reset(&mut self);

    /// Instrumentation for the most recent run.
    fn metrics(&self) -> BackendMetrics;
}

/// A [`Recognizer`] that can also count derivations.
pub trait Parser: Recognizer {
    /// Counts the parse trees of an input.
    ///
    /// # Errors
    ///
    /// Same as [`Recognizer::recognize`]; a rejected input is
    /// `Ok(ParseCount::Finite(0))`.
    fn parse_count(&mut self, kinds: &[&str]) -> Result<ParseCount, BackendError>;

    /// Clones this backend into an independent, freshly-reset instance
    /// without recompiling the grammar.
    ///
    /// The fork shares no mutable state with `self`: for PWD it duplicates
    /// the compiled arena (a flat memcpy — the expensive graph construction
    /// and hash-consing of [`Recognizer::prepare`] are *not* repeated), and
    /// for the stateless baselines it clones their tables. This is how a
    /// session pool turns one cached compile into N per-thread sessions.
    fn fork(&self) -> Box<dyn Parser>;
}

// ---------------------------------------------------------------------
// PWD
// ---------------------------------------------------------------------

/// The PWD engine behind the uniform API: a [`Compiled`] grammar driven
/// through [`ParseSession`], reusing one arena across runs via epoch reset.
pub struct PwdBackend {
    compiled: Compiled,
    label: &'static str,
    runs: u64,
}

impl PwdBackend {
    /// Compiles the paper's improved configuration.
    pub fn improved(cfg: &Cfg) -> PwdBackend {
        PwdBackend::with_config(cfg, ParserConfig::improved(), "pwd-improved")
    }

    /// Compiles the Might et al. (2011) configuration.
    pub fn original_2011(cfg: &Cfg) -> PwdBackend {
        PwdBackend::with_config(cfg, ParserConfig::original_2011(), "pwd-original")
    }

    /// Compiles an arbitrary engine configuration under a display label.
    pub fn with_config(cfg: &Cfg, config: ParserConfig, label: &'static str) -> PwdBackend {
        PwdBackend { compiled: Compiled::compile(cfg, config), label, runs: 0 }
    }

    /// Wraps an already-compiled engine (e.g. a clone of a cached
    /// [`Compiled`] template) without paying compilation again.
    pub fn from_compiled(mut compiled: Compiled, label: &'static str) -> PwdBackend {
        compiled.lang.reset();
        PwdBackend { compiled, label, runs: 0 }
    }

    /// The underlying compiled engine, for backend-specific inspection.
    pub fn compiled(&self) -> &Compiled {
        &self.compiled
    }

    fn tokens(&mut self, kinds: &[&str]) -> Result<Vec<Token>, BackendError> {
        let label = self.label;
        kinds
            .iter()
            .map(|k| {
                self.compiled
                    .token(k, k)
                    .ok_or_else(|| BackendError::new(label, format!("unknown terminal {k:?}")))
            })
            .collect()
    }

    fn err(&self, e: PwdError) -> BackendError {
        BackendError::new(self.label, e)
    }
}

impl Recognizer for PwdBackend {
    fn prepare(cfg: &Cfg) -> PwdBackend {
        PwdBackend::improved(cfg)
    }

    fn name(&self) -> &'static str {
        self.label
    }

    fn recognize(&mut self, kinds: &[&str]) -> Result<bool, BackendError> {
        let toks = self.tokens(kinds)?;
        self.recognize_tokens(&toks)
    }

    fn recognize_lexemes(&mut self, lexemes: &[Lexeme]) -> Result<bool, BackendError> {
        // Keep lexeme text: PWD memoizes derivatives by token *value*.
        let toks = self
            .compiled
            .tokens_from_lexemes(lexemes)
            .map_err(|e| BackendError::new(self.label, e))?;
        self.recognize_tokens(&toks)
    }

    fn reset(&mut self) {
        self.compiled.lang.reset();
    }

    fn metrics(&self) -> BackendMetrics {
        let m = self.compiled.lang.metrics();
        BackendMetrics {
            runs: self.runs,
            work: m.derive_calls,
            live_state: self.compiled.lang.node_count() as u64,
            memo_hits: m.derive_hits(),
            memo_misses: m.derive_uncached,
            template_shares: m.template_shares,
            template_instantiations: m.template_instantiations,
        }
    }
}

impl PwdBackend {
    /// The shared run path: epoch-reset, then drive one incremental session
    /// over the tokens.
    fn recognize_tokens(&mut self, toks: &[Token]) -> Result<bool, BackendError> {
        self.compiled.lang.reset();
        self.runs += 1;
        let (label, start) = (self.label, self.compiled.start);
        let mut session = ParseSession::start(&mut self.compiled.lang, start)
            .map_err(|e| BackendError::new(label, e))?;
        session.feed_all(toks).map_err(|e| BackendError::new(label, e))?;
        let accepted = session.prefix_is_sentence();
        session.finish();
        Ok(accepted)
    }
}

impl Parser for PwdBackend {
    fn fork(&self) -> Box<dyn Parser> {
        Box::new(PwdBackend::from_compiled(self.compiled.clone(), self.label))
    }

    fn parse_count(&mut self, kinds: &[&str]) -> Result<ParseCount, BackendError> {
        let toks = self.tokens(kinds)?;
        self.compiled.lang.reset();
        self.runs += 1;
        let start = self.compiled.start;
        match self.compiled.lang.count_parses(start, &toks) {
            Ok(Some(n)) => Ok(ParseCount::Finite(n)),
            Ok(None) => Ok(ParseCount::Infinite),
            Err(PwdError::Rejected { .. }) => Ok(ParseCount::Finite(0)),
            Err(e) => Err(self.err(e)),
        }
    }
}

// ---------------------------------------------------------------------
// Earley
// ---------------------------------------------------------------------

/// The Earley baseline behind the uniform API.
pub struct EarleyBackend {
    parser: EarleyParser,
    runs: u64,
    last: EarleyStats,
}

impl Recognizer for EarleyBackend {
    fn prepare(cfg: &Cfg) -> EarleyBackend {
        EarleyBackend { parser: EarleyParser::new(cfg), runs: 0, last: EarleyStats::default() }
    }

    fn name(&self) -> &'static str {
        "earley"
    }

    fn recognize(&mut self, kinds: &[&str]) -> Result<bool, BackendError> {
        let toks =
            self.parser.kinds_to_tokens(kinds).map_err(|e| BackendError::new("earley", e))?;
        self.runs += 1;
        let (ok, stats) = self.parser.recognize_with_stats(&toks);
        self.last = stats;
        Ok(ok)
    }

    fn reset(&mut self) {
        // Stateless between runs: the chart is rebuilt per input.
    }

    fn metrics(&self) -> BackendMetrics {
        BackendMetrics {
            runs: self.runs,
            work: self.last.total_items as u64,
            live_state: self.last.set_sizes.iter().copied().max().unwrap_or(0) as u64,
            ..BackendMetrics::default()
        }
    }
}

impl Parser for EarleyBackend {
    fn fork(&self) -> Box<dyn Parser> {
        Box::new(EarleyBackend {
            parser: self.parser.clone(),
            runs: 0,
            last: EarleyStats::default(),
        })
    }

    fn parse_count(&mut self, _kinds: &[&str]) -> Result<ParseCount, BackendError> {
        Ok(ParseCount::Unsupported)
    }
}

// ---------------------------------------------------------------------
// GLR
// ---------------------------------------------------------------------

/// The GLR baseline behind the uniform API.
pub struct GlrBackend {
    parser: GlrParser,
    runs: u64,
    last: GlrStats,
}

impl Recognizer for GlrBackend {
    fn prepare(cfg: &Cfg) -> GlrBackend {
        GlrBackend { parser: GlrParser::new(cfg), runs: 0, last: GlrStats::default() }
    }

    fn name(&self) -> &'static str {
        "glr"
    }

    fn recognize(&mut self, kinds: &[&str]) -> Result<bool, BackendError> {
        let toks = self.parser.kinds_to_tokens(kinds).map_err(|e| BackendError::new("glr", e))?;
        self.runs += 1;
        let (ok, stats) = self.parser.recognize_with_stats(&toks);
        self.last = stats;
        Ok(ok)
    }

    fn reset(&mut self) {
        // Stateless between runs: the GSS is rebuilt per input.
    }

    fn metrics(&self) -> BackendMetrics {
        BackendMetrics {
            runs: self.runs,
            work: self.last.gss_nodes as u64,
            live_state: self.last.gss_edges as u64,
            ..BackendMetrics::default()
        }
    }
}

impl Parser for GlrBackend {
    fn fork(&self) -> Box<dyn Parser> {
        Box::new(GlrBackend { parser: self.parser.clone(), runs: 0, last: GlrStats::default() })
    }

    fn parse_count(&mut self, _kinds: &[&str]) -> Result<ParseCount, BackendError> {
        Ok(ParseCount::Unsupported)
    }
}

// ---------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------

/// The stable names accepted by [`backend_by_name`], in roster order.
pub const BACKEND_NAMES: &[&str] = &["pwd-improved", "pwd-original", "earley", "glr"];

/// Prepares one backend by its stable name (`"pwd"` is accepted as an alias
/// for `"pwd-improved"`), or `None` for an unknown name.
///
/// This is the selector services and CLIs use to host any parser family —
/// PWD or the Earley/GLR baselines — behind one `dyn` [`Parser`] without
/// compiling the whole roster.
pub fn backend_by_name(name: &str, cfg: &Cfg) -> Option<Box<dyn Parser>> {
    match name {
        "pwd" | "pwd-improved" => Some(Box::new(PwdBackend::improved(cfg))),
        "pwd-original" => Some(Box::new(PwdBackend::original_2011(cfg))),
        "earley" => Some(Box::new(EarleyBackend::prepare(cfg))),
        "glr" => Some(Box::new(GlrBackend::prepare(cfg))),
        _ => None,
    }
}

/// Prepares the standard backend roster for a grammar: improved PWD,
/// original-2011 PWD, Earley, and GLR — the four parsers of the paper's
/// Figure 6 — behind `dyn` [`Parser`].
pub fn backends(cfg: &Cfg) -> Vec<Box<dyn Parser>> {
    BACKEND_NAMES
        .iter()
        .map(|name| backend_by_name(name, cfg).expect("roster names are always valid"))
        .collect()
}

// The whole point of the `Send + Sync` supertrait: compiled backends (and
// boxed trait objects of them) can cross threads. Checked at compile time so
// a regression fails the build.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PwdBackend>();
    assert_send_sync::<EarleyBackend>();
    assert_send_sync::<GlrBackend>();
    assert_send_sync::<Box<dyn Parser>>();
    assert_send_sync::<Compiled>();
};

/// Runs one input through every backend and asserts they agree — the shared
/// driver of the differential tests.
///
/// Returns the unanimous verdict.
///
/// # Panics
///
/// Panics (with both backend names and the input) if any backend errors or
/// two backends disagree.
pub fn unanimous(backends: &mut [Box<dyn Parser>], kinds: &[&str], label: &str) -> bool {
    let mut verdicts: Vec<(&'static str, bool)> = Vec::with_capacity(backends.len());
    for b in backends.iter_mut() {
        let ans = b
            .recognize(kinds)
            .unwrap_or_else(|e| panic!("{label}: backend failed on {kinds:?}: {e}"));
        verdicts.push((b.name(), ans));
    }
    let (first_name, first) = verdicts[0];
    for &(name, ans) in &verdicts[1..] {
        assert_eq!(first, ans, "{label}: {first_name} and {name} disagree on {kinds:?}");
    }
    first
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::CfgBuilder;

    fn catalan() -> Cfg {
        let mut g = CfgBuilder::new("S");
        g.terminal("a");
        g.rule("S", &["S", "S"]);
        g.rule("S", &["a"]);
        g.build().expect("valid grammar")
    }

    #[test]
    fn all_backends_share_one_lifecycle() {
        let cfg = catalan();
        for backend in &mut backends(&cfg) {
            assert!(!backend.recognize(&[]).unwrap(), "{}", backend.name());
            assert!(backend.recognize(&["a", "a"]).unwrap(), "{}", backend.name());
            backend.reset();
            assert!(backend.recognize(&["a"]).unwrap(), "{}", backend.name());
            let m = backend.metrics();
            assert_eq!(m.runs, 3, "{}", backend.name());
            assert!(m.work > 0, "{}", backend.name());
        }
    }

    #[test]
    fn runs_are_independent_without_explicit_reset() {
        let cfg = catalan();
        for backend in &mut backends(&cfg) {
            // Same verdicts in any order, no resets in between.
            assert!(backend.recognize(&["a", "a", "a"]).unwrap(), "{}", backend.name());
            assert!(!backend.recognize(&[]).unwrap(), "{}", backend.name());
            assert!(backend.recognize(&["a", "a", "a"]).unwrap(), "{}", backend.name());
        }
    }

    #[test]
    fn parse_counts_where_supported() {
        let cfg = catalan();
        let mut pwd = PwdBackend::improved(&cfg);
        // 4 leaves => Catalan number C3 = 5 trees.
        assert_eq!(pwd.parse_count(&["a", "a", "a", "a"]).unwrap(), ParseCount::Finite(5));
        assert_eq!(pwd.parse_count(&[]).unwrap(), ParseCount::Finite(0));
        let mut earley = EarleyBackend::prepare(&cfg);
        assert_eq!(earley.parse_count(&["a"]).unwrap(), ParseCount::Unsupported);
    }

    #[test]
    fn unknown_kind_is_an_error_not_a_rejection() {
        let cfg = catalan();
        for backend in &mut backends(&cfg) {
            let err = backend.recognize(&["a", "WAT"]).unwrap_err();
            assert!(err.message.contains("WAT"), "{}: {err}", backend.name());
        }
    }

    #[test]
    fn unanimous_driver_agrees_on_corpus() {
        let cfg = catalan();
        let mut bs = backends(&cfg);
        assert!(unanimous(&mut bs, &["a", "a"], "catalan"));
        assert!(!unanimous(&mut bs, &[], "catalan"));
    }
}
