//! A backend-agnostic **streaming** parser API over the three parser
//! families.
//!
//! The paper's central observation is that the parser state after `k`
//! tokens is itself a first-class language — `D_{t1…tk}(L)` — which makes
//! parsing with derivatives naturally streaming and checkpointable. This
//! module makes that the shape of the whole system: every backend (the PWD
//! engine, the Earley baseline, the GLR baseline) implements one
//! incremental lifecycle, and batch parsing is a thin shim over it.
//!
//! ```text
//!   text ──► TokenSource ──► Session ──► verdict / forest
//!            (pwd-lex,        feed / feed_all
//!             zero-copy       checkpoint / rollback
//!             (kind, span))   finish
//! ```
//!
//! 1. [`Recognizer::prepare`] — compile a backend from a [`Cfg`];
//! 2. [`Session::open`] (or [`Session::owned`]) — start an incremental
//!    parse: `feed` tokens as they arrive (straight from a streaming
//!    [`TokenSource`] via [`Session::feed_source`] — no intermediate
//!    `Vec<Lexeme>`), `checkpoint` a prefix, `rollback` a speculative
//!    continuation, `finish` for the verdict;
//! 3. [`Recognizer::recognize`] / [`Recognizer::recognize_lexemes`] /
//!    [`Recognizer::recognize_source`] — batch shims, provided once as
//!    default methods over the streaming hooks (each run starts from a
//!    clean slate);
//! 4. [`Parser::parse_count`] — count derivations, where supported;
//! 5. [`Recognizer::reset`] — return to the post-compile state (for PWD the
//!    O(1) epoch bump); [`Recognizer::metrics`] — uniform work counters.
//!
//! **Checkpoint = saved derivative.** For the PWD backend a [`Checkpoint`]
//! is literally the derivative node after `k` tokens — the paper's
//! `D_{t1…tk}(L)` made operational; saving it is saving one `NodeId`, and
//! rolling back is a pointer restore that composes with the epoch-stamped
//! memo state and the never-evicted class-template rows (all keyed by
//! nodes, which survive). The baselines snapshot their own prefix state:
//! Earley the chart prefix, GLR the graph-structured-stack frontier.
//!
//! # Examples
//!
//! Race every backend on one input through the trait object interface:
//!
//! ```
//! use derp::api::{backends, Parser};
//! use derp::grammar::CfgBuilder;
//!
//! # fn main() -> Result<(), derp::api::BackendError> {
//! let mut g = CfgBuilder::new("S");
//! g.terminal("a");
//! g.rule("S", &["S", "S"]);
//! g.rule("S", &["a"]);
//! let cfg = g.build().expect("valid grammar");
//!
//! for backend in &mut backends(&cfg) {
//!     assert!(backend.recognize(&["a", "a", "a"])?);
//!     assert!(!backend.recognize(&[])?);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! Stream with checkpoint/rollback — the REPL/LSP shape:
//!
//! ```
//! use derp::api::{PwdBackend, Recognizer, Session};
//! use derp::grammar::CfgBuilder;
//!
//! # fn main() -> Result<(), derp::api::BackendError> {
//! let mut g = CfgBuilder::new("S");
//! g.terminals(&["a", "b"]);
//! g.rule("S", &["a", "S", "b"]);
//! g.rule("S", &["a", "b"]);
//! let cfg = g.build().expect("valid grammar");
//! let mut backend = PwdBackend::improved(&cfg);
//!
//! let mut session = Session::open(&mut backend)?;
//! session.feed_all(&["a", "a"])?;
//! let cp = session.checkpoint()?; // the language after "aa", saved
//! session.feed_all(&["a", "a"])?; // speculate…
//! session.rollback(&cp)?; // …and rewind to the saved derivative
//! session.feed_all(&["b", "b"])?;
//! assert!(session.finish()?, "aabb is a sentence");
//! # Ok(())
//! # }
//! ```

use crate::core::{ParseMode, ParserConfig, PwdError, RecoveryBudget, SessionState};
use crate::earley::{EarleyChart, EarleyParser, EarleyStats};
use crate::glr::{GlrParser, GlrStats};
use crate::grammar::{build_sppf, Cfg, Compiled};
use crate::lex::Lexeme;
use crate::recover::{self, Diagnostic, InputToken, RecoveryState};
use std::fmt;

pub use crate::core::StateSignature;
pub use pwd_forest::{EnumLimits, ForestSummary, ParseForest, Tree, TreeCount};
pub use pwd_lex::{
    KindSource, LexemeSource, ScannedToken, SourceBuffer, Span, TokenEdit, TokenSource,
};
pub use pwd_obs::{Histogram, Phase, PhaseStats};

/// An error from a parser backend: a malformed grammar, an input token
/// outside the grammar's alphabet, a lifecycle misuse (feeding without an
/// open session, restoring a foreign checkpoint), or an engine resource
/// limit.
///
/// A plain non-match is **not** an error — it is `Ok(false)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendError {
    /// The backend that produced the error.
    pub backend: &'static str,
    /// Human-readable description.
    pub message: String,
    /// The structured cause: an input token kind outside the grammar's
    /// alphabet. Kept private (with the [`is_unknown_kind`]
    /// accessor) because it is a *classification*, not free-form data —
    /// error recovery repairs unknown-kind feeds (the session state is
    /// untouched when they are raised) and must never retry any other
    /// error shape.
    ///
    /// [`is_unknown_kind`]: BackendError::is_unknown_kind
    unknown_kind: bool,
}

impl BackendError {
    fn new(backend: &'static str, message: impl fmt::Display) -> BackendError {
        BackendError { backend, message: message.to_string(), unknown_kind: false }
    }

    fn unknown_kind(backend: &'static str, message: impl fmt::Display) -> BackendError {
        BackendError { backend, message: message.to_string(), unknown_kind: true }
    }

    /// Was this error raised because a fed token's kind is not a terminal
    /// of the grammar? Such errors are raised *before* any session state
    /// changes, so the session remains usable — error recovery relies on
    /// exactly that to substitute or skip the offending token.
    pub fn is_unknown_kind(&self) -> bool {
        self.unknown_kind
    }

    fn no_session(backend: &'static str) -> BackendError {
        BackendError::new(backend, "no open session (call begin/Session::open first)")
    }

    fn stale_checkpoint(backend: &'static str) -> BackendError {
        BackendError::new(
            backend,
            "checkpoint does not belong to the open session \
             (taken in another session, or already rolled past)",
        )
    }
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.backend, self.message)
    }
}

impl std::error::Error for BackendError {}

/// The result of counting the parse trees of an input: an exact `u128`
/// ([`TreeCount::Finite`]; 0 = rejected), an explicit
/// [`TreeCount::Overflow`] past 2¹²⁸, or [`TreeCount::Infinite`]. Every
/// backend counts now that all three build shared parse forests — the old
/// `Unsupported` variant (and its silent-overflow `usize` predecessor) is
/// gone.
pub use pwd_forest::TreeCount as ParseCount;

/// The observable state of a session after feeding a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedOutcome {
    /// The backend has not proven the prefix dead; for PWD this is precise
    /// (some continuation *does* reach a sentence).
    Viable {
        /// Is the *current* prefix itself a sentence?
        prefix_is_sentence: bool,
    },
    /// No continuation of the input can be accepted. Sticky until a
    /// rollback to a pre-death checkpoint.
    Dead,
}

impl FeedOutcome {
    /// Is the session still viable after this feed?
    pub fn is_viable(&self) -> bool {
        matches!(self, FeedOutcome::Viable { .. })
    }
}

/// A saved session position, restorable with [`Session::rollback`] (or the
/// [`Recognizer::rollback`] hook).
///
/// For PWD this wraps the saved derivative node — checkpointing **is** the
/// paper's "the state after `k` tokens is a language" made operational.
/// Earley checkpoints are chart-prefix lengths; GLR checkpoints snapshot
/// the GSS frontier. A checkpoint is valid for the session it was taken in,
/// **on the timeline it was taken on**: rolling back to an earlier position
/// invalidates every checkpoint taken after that position (the positions no
/// longer exist), while checkpoints at or before it stay restorable, any
/// number of times. Backends reject stale, foreign, or invalidated
/// checkpoints with a [`BackendError`] — validation is exact, enforced by
/// a per-session timeline guard shared by all backends.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Process-unique id of the session this checkpoint belongs to.
    session: u64,
    /// Tokens fed when the checkpoint was taken.
    tokens: usize,
    /// Timeline mark at that position (see `SessionGuard`).
    mark: u64,
    state: CheckpointState,
}

#[derive(Debug, Clone)]
enum CheckpointState {
    Pwd(crate::core::SessionCheckpoint),
    Earley(crate::earley::EarleyCheckpoint),
    Glr(crate::glr::GlrCheckpoint),
}

impl Checkpoint {
    /// Number of tokens fed when this checkpoint was taken.
    pub fn tokens_fed(&self) -> usize {
        self.tokens
    }
}

/// Per-session checkpoint bookkeeping, shared by every backend: a
/// process-unique session id plus a **timeline** — one mark per fed-token
/// position, where the mark records which "era" (count of rollbacks so
/// far) wrote that position. Rollback bumps the era and truncates the
/// timeline, so a checkpoint is admitted iff its position still exists
/// *and* was written in the era the checkpoint saw — which exactly rejects
/// the three invalid shapes (foreign session, position rolled past,
/// position re-fed after a rollback) with no false rejections of the valid
/// ones (restoring the same checkpoint repeatedly, or any checkpoint at or
/// before every rollback target since it was taken).
struct SessionGuard {
    /// Process-unique session id (0 = no session open).
    session: u64,
    /// Rollbacks performed in this session (the current era).
    era: u64,
    /// `marks[k]` = era that wrote position `k`; `len - 1` = tokens fed.
    marks: Vec<u64>,
}

impl SessionGuard {
    /// No session open.
    fn closed() -> SessionGuard {
        SessionGuard { session: 0, era: 0, marks: Vec::new() }
    }

    /// Opens a fresh session with a process-unique id.
    fn open() -> SessionGuard {
        static NEXT_SESSION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        SessionGuard {
            session: NEXT_SESSION.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            era: 0,
            marks: vec![0],
        }
    }

    /// Records one fed token (call once per successful feed, dead or not).
    fn on_feed(&mut self) {
        self.marks.push(self.era);
    }

    /// Stamps a checkpoint at the current position.
    fn stamp(&self, state: CheckpointState) -> Checkpoint {
        Checkpoint {
            session: self.session,
            tokens: self.marks.len() - 1,
            mark: *self.marks.last().expect("open guard has a mark"),
            state,
        }
    }

    /// Admits or rejects a checkpoint for restoration.
    fn admit(&self, cp: &Checkpoint, backend: &'static str) -> Result<(), BackendError> {
        if cp.session == self.session
            && cp.tokens < self.marks.len()
            && self.marks[cp.tokens] == cp.mark
        {
            Ok(())
        } else {
            Err(BackendError::stale_checkpoint(backend))
        }
    }

    /// Records a rollback to `tokens` (call after the backend restored).
    fn on_rollback(&mut self, tokens: usize) {
        self.era += 1;
        self.marks.truncate(tokens + 1);
    }

    /// Extends the timeline to `tokens` positions, stamping the current era
    /// on every position added — the bookkeeping for a splice *convergence
    /// jump*, which lands the session at a position whose intermediate marks
    /// were never individually fed on this timeline. Checkpoints stamped at
    /// the new positions afterwards admit normally; checkpoints from before
    /// the jump's rollback stay invalidated (their eras are gone).
    fn extend_to(&mut self, tokens: usize) {
        self.marks.truncate(tokens + 1);
        while self.marks.len() < tokens + 1 {
            self.marks.push(self.era);
        }
    }
}

/// Uniform per-backend instrumentation.
///
/// `work` and `live_state` are backend-specific units — PWD counts `derive`
/// calls and grammar nodes, Earley counts chart items, GLR counts
/// graph-structured-stack nodes and edges — so they compare *growth*, not
/// absolute cost, across backends.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BackendMetrics {
    /// Inputs run through `recognize`/`parse_count`/sessions since
    /// `prepare`.
    pub runs: u64,
    /// Work units spent on the most recent input.
    pub work: u64,
    /// Live state after the most recent input.
    pub live_state: u64,
    /// Work units answered from a memo/cache on the most recent input
    /// (PWD: `derive` calls served by the memo tables, including the
    /// class-template fast path). Zero for backends without a memo.
    pub memo_hits: u64,
    /// Work units that missed every cache and did real work on the most
    /// recent input (PWD: uncached `derive` calls).
    pub memo_misses: u64,
    /// Lexeme-independent derivative subgraphs shared verbatim with a new
    /// lexeme of the same terminal class (PWD class templates only).
    pub template_shares: u64,
    /// Derivatives of a repeat terminal class re-instantiated along the
    /// patch path to fresh leaves (PWD class templates, parse mode only).
    pub template_instantiations: u64,
    /// Lazy-automaton states interned, one dense transition row each (PWD
    /// recognize mode with the automaton axis on; zero elsewhere).
    pub auto_rows_built: u64,
    /// Tokens consumed by an automaton transition-table hit — no derive
    /// call, no memo probe, no hashing.
    pub auto_table_hits: u64,
    /// Tokens consumed by the interpreted path while the automaton was
    /// active (cold-table misses plus post-budget fallback steps).
    pub auto_fallbacks: u64,
    /// Approximate resident bytes of the backend's live parse state (PWD:
    /// the node/forest arenas plus their side pools; zero for backends
    /// without an arena).
    pub arena_bytes: u64,
    /// Tokens an edit splice did **not** refeed (prefix below the ladder
    /// rung plus suffix skipped by a convergence jump), cumulative over the
    /// session. Populated by the [`Session`] splice layer
    /// ([`Session::splice_tokens`]); zero for sessions without incremental
    /// mode.
    pub tokens_reused: u64,
    /// Tokens an edit splice refed through the backend (rung→damage
    /// catch-up, inserted tokens, and suffix tokens fed before
    /// convergence), cumulative over the session.
    pub tokens_refed: u64,
    /// Total distance (in tokens) between each splice's damage start and
    /// the checkpoint-ladder rung it restored — the rollback overshoot the
    /// bounded ladder paid, cumulative over the session.
    pub ladder_rollback_distance: u64,
    /// Snapshot of the per-phase latency histograms, present iff
    /// observability is enabled on the backend
    /// ([`Recognizer::set_obs`]). Boxed so the common disabled case adds
    /// one word, not ten histograms.
    pub phases: Option<Box<PhaseStats>>,
}

/// A compiled recognizer with a uniform **streaming** lifecycle.
///
/// The required methods are the streaming hooks — `begin`, `feed`,
/// `checkpoint`/`rollback`, `end` — one incremental state machine every
/// backend implements natively (PWD drives its derivative session, Earley
/// grows a chart, GLR grows a graph-structured stack). Everything
/// batch-shaped ([`recognize`](Recognizer::recognize),
/// [`recognize_lexemes`](Recognizer::recognize_lexemes),
/// [`recognize_source`](Recognizer::recognize_source)) is a provided
/// default over those hooks, shared by all backends. Prefer driving the
/// hooks through a [`Session`], which enforces the lifecycle.
///
/// Implementations must make every `recognize*` call independent: each run
/// observes the backend as freshly [`reset`](Recognizer::reset), and
/// `begin` always starts from a clean slate (any previously open session is
/// discarded).
///
/// `Send + Sync` is a supertrait bound: a backend must be movable into a
/// worker thread and shareable behind `Arc` (all mutation goes through
/// `&mut self`, so `Sync` costs implementations nothing — it just rules out
/// un-shareable interior mutability). The `pwd-serve` subsystem pools
/// backends across threads on exactly this guarantee.
pub trait Recognizer: Send + Sync {
    /// Compiles a backend for a grammar with its default configuration.
    fn prepare(cfg: &Cfg) -> Self
    where
        Self: Sized;

    /// A stable display name (`"pwd-improved"`, `"earley"`, …).
    fn name(&self) -> &'static str;

    // ------------------------------------------------------------------
    // Streaming hooks (the per-backend SPI)
    // ------------------------------------------------------------------

    /// Opens a streaming session from a clean slate, discarding any session
    /// already open.
    ///
    /// # Errors
    ///
    /// [`BackendError`] for malformed grammars.
    fn begin(&mut self) -> Result<(), BackendError>;

    /// Feeds one token (kind + lexeme text) to the open session. Returns
    /// whether the session is still viable (`false` = dead).
    ///
    /// This is deliberately the *cheap* hook: it must not pay for a
    /// sentence-hood probe (which costs GLR a full end-of-input reduce
    /// phase), so batch shims feed at full speed; callers that want the
    /// rich [`FeedOutcome`] go through [`Session::feed`] or
    /// [`Session::outcome`], which query
    /// [`prefix_is_sentence`](Recognizer::prefix_is_sentence) on demand.
    ///
    /// # Errors
    ///
    /// [`BackendError`] for kinds outside the grammar's alphabet, engine
    /// resource limits, or feeding without an open session. A token that
    /// kills the language is *not* an error — it returns `Ok(false)`, and
    /// the verdict stays retrievable.
    fn feed(&mut self, kind: &str, text: &str) -> Result<bool, BackendError>;

    /// Tokens fed to the open session (0 when none is open).
    fn tokens_fed(&self) -> usize;

    /// Can some continuation of the open session still be accepted?
    /// (`true` when no session is open.)
    fn is_viable(&self) -> bool;

    /// Is the prefix fed so far a complete sentence?
    ///
    /// # Errors
    ///
    /// [`BackendError`] if no session is open.
    fn prefix_is_sentence(&mut self) -> Result<bool, BackendError>;

    /// Saves the open session's position — for PWD, the current derivative
    /// (one `NodeId`).
    ///
    /// # Errors
    ///
    /// [`BackendError`] if no session is open.
    fn checkpoint(&mut self) -> Result<Checkpoint, BackendError>;

    /// Restores a checkpoint taken earlier in the open session, on the
    /// current timeline (a rollback invalidates every checkpoint taken
    /// after its target position).
    ///
    /// # Errors
    ///
    /// [`BackendError`] for checkpoints from another session or backend,
    /// for positions rolled past (whether or not re-fed since), or if no
    /// session is open.
    fn rollback(&mut self, cp: &Checkpoint) -> Result<(), BackendError>;

    /// Closes the open session and returns whether the full fed input was
    /// accepted.
    ///
    /// # Errors
    ///
    /// [`BackendError`] if no session is open.
    fn end(&mut self) -> Result<bool, BackendError>;

    // ------------------------------------------------------------------
    // Batch shims (shared defaults over the streaming hooks)
    // ------------------------------------------------------------------

    /// Does the grammar accept this sequence of terminal kinds?
    ///
    /// One streaming session under the hood: `begin`, `feed` each kind (as
    /// its own text), `end`.
    ///
    /// # Errors
    ///
    /// [`BackendError`] for kinds outside the grammar's alphabet or engine
    /// resource limits; rejection is `Ok(false)`.
    fn recognize(&mut self, kinds: &[&str]) -> Result<bool, BackendError> {
        self.begin()?;
        for k in kinds {
            self.feed(k, k)?;
        }
        self.end()
    }

    /// Does the grammar accept this lexeme stream?
    ///
    /// Lexeme *text* reaches the engine (PWD's parse-mode memo is keyed by
    /// token value), via the same streaming session as
    /// [`recognize`](Recognizer::recognize).
    ///
    /// # Errors
    ///
    /// Same as [`recognize`](Recognizer::recognize).
    fn recognize_lexemes(&mut self, lexemes: &[Lexeme]) -> Result<bool, BackendError> {
        self.begin()?;
        for l in lexemes {
            self.feed(&l.kind, &l.text)?;
        }
        self.end()
    }

    /// Does the grammar accept this token stream? The fused-pipeline entry
    /// point: tokens are pulled (and, for a streaming lexer source, matched)
    /// one at a time and fed straight into the session — no intermediate
    /// `Vec<Lexeme>` exists anywhere on this path.
    ///
    /// # Errors
    ///
    /// [`BackendError`] for lexing errors (wrapped), unknown kinds, and
    /// engine resource limits.
    fn recognize_source(&mut self, src: &mut dyn TokenSource) -> Result<bool, BackendError> {
        self.begin()?;
        while let Some(item) = src.next_token() {
            let t = match item {
                Ok(t) => t,
                Err(e) => return Err(BackendError::new(self.name(), e)),
            };
            self.feed(t.kind, t.text)?;
        }
        self.end()
    }

    /// Returns the backend to its freshly-[`prepare`](Recognizer::prepare)d
    /// state. Cheap for every backend; for PWD it is a single epoch bump.
    fn reset(&mut self);

    /// Enables or disables per-phase latency observability on this backend.
    ///
    /// When enabled, [`metrics`](Recognizer::metrics) carries a
    /// [`PhaseStats`] snapshot in [`BackendMetrics::phases`]: power-of-two
    /// duration histograms over the backend's instrumented phases (PWD:
    /// derive/compact/nullable/automaton-row/forest; the baselines: one
    /// derive-equivalent span per feed plus forest extraction). Disabling
    /// discards accumulated phase data. Backends honor the zero-overhead
    /// contract of `pwd-obs`: while disabled (the default) no clock is
    /// read, and with the `obs` cargo feature off the hooks compile away
    /// entirely — this method is then a no-op and `phases` stays `None`.
    ///
    /// The default implementation is a no-op, for recognizers without
    /// instrumentation.
    fn set_obs(&mut self, _enabled: bool) {}

    /// The token kinds the open session can consume next — error
    /// recovery's candidate set, sorted for determinism. Empty when no
    /// session is open, when the session is dead, or for recognizers
    /// without the capability (the default).
    ///
    /// Each backend answers from its own state representation: PWD
    /// trial-derives a cloned session state w.r.t. every grammar terminal
    /// (each probe counted in the engine's `recovery_probes` metric),
    /// Earley reads the exact expected set off its chart frontier, and
    /// GLR reports the terminals its GSS frontier can actually shift
    /// (trial shifts on the raw session, below the checkpoint guard).
    /// The result is exact for grammars without useless symbols: `feed`
    /// of a reported kind returns viable.
    fn expected_kinds(&mut self) -> Vec<String> {
        Vec::new()
    }

    /// Accounts an externally timed error-recovery episode (nanoseconds)
    /// under the backend's [`Phase::Recover`] histogram, when
    /// observability is enabled. Recovery lives above the backends (in
    /// `derp::recover`), so the backends cannot time it themselves; the
    /// driver hands the measured span down through this hook. The default
    /// discards it.
    fn record_recover_span(&mut self, _nanos: u64) {}

    /// A comparable identity of the open session's parser state, when the
    /// backend can witness one **soundly**: equal signatures must imply the
    /// two states give identical verdicts on every continuation. The
    /// [`Session`] splice layer compares these across an edit for its
    /// convergence fast path — once the post-edit state provably matches
    /// the memoized pre-edit state at the same token alignment, the rest of
    /// the suffix need not be refed.
    ///
    /// `None` (the default) simply disables the fast path; splices still
    /// work by refeeding from the nearest checkpoint-ladder rung. The PWD
    /// backend answers in recognize mode (exact interned automaton state
    /// ids when the automaton axis is on, graph-isomorphism digests
    /// otherwise); parse mode stays `None` because equal recognize
    /// structure does not imply equal *forests*.
    fn state_signature(&mut self) -> Option<StateSignature> {
        None
    }

    /// Restores `cp` — a checkpoint taken at a **later** position of the
    /// open session whose state is known (by signature equality at an
    /// aligned position) to be exactly what refeeding the remaining suffix
    /// would rebuild — and restamps the session at `tokens` fed tokens.
    ///
    /// This is the splice convergence jump, the one restoration that
    /// deliberately bypasses the timeline guard's position admission (the
    /// jump target was invalidated by the splice's own rollback; only the
    /// session identity is checked). It must never be exposed to callers
    /// directly — [`Session::splice_tokens`] is the sole sound caller.
    /// Backends without an O(1) restorable state keep the default, which
    /// refuses; the splice then degrades to refeeding the suffix from the
    /// nearest rung (for Earley that refeed *is* chart-prefix reuse, for
    /// GLR re-entry from the saved GSS frontier).
    fn splice_restore(&mut self, _cp: &Checkpoint, _tokens: usize) -> Result<(), BackendError> {
        Err(BackendError::new(self.name(), "backend does not support the splice convergence jump"))
    }

    /// Re-stamps `cp` — a checkpoint from a timeline the splice's rollback
    /// invalidated — onto the **current** timeline at position `tokens`,
    /// returning a checkpoint that admits through the normal
    /// [`rollback`](Recognizer::rollback) path.
    ///
    /// Only sound after a successful [`splice_restore`] convergence jump,
    /// for old checkpoints at or beyond the convergence point (their states
    /// provably recur on the new timeline, shifted by the edit's length
    /// delta): this is how [`Session::splice_tokens`] keeps the checkpoint
    /// ladder dense across the jumped-over region, so repeated edits keep
    /// paying rung-local refeeds instead of degrading as rungs thin out.
    /// `None` (the default) skips the densification; the splice still
    /// works.
    fn reanchor_checkpoint(&mut self, _cp: &Checkpoint, _tokens: usize) -> Option<Checkpoint> {
        None
    }

    /// Instrumentation for the most recent run (live counters while a
    /// session is open).
    fn metrics(&self) -> BackendMetrics;
}

/// A [`Recognizer`] that also builds **shared parse forests** — the
/// ambiguity-node graphs under which PWD, Earley, and GLR are all cubic
/// (the paper's Lemma-3 representation), lifted into one backend-agnostic
/// API.
///
/// The one required forest hook is [`end_forest`](Parser::end_forest) (the
/// forest-returning twin of [`Recognizer::end`]); batch
/// [`parse_forest`](Parser::parse_forest) and the counting/enumeration
/// conveniences are shared shims over it. Every forest comes back
/// **canonical** ([`pwd_forest`]'s packed normal form), so forests from
/// different backends for the same input compare by
/// [`ParseForest::fingerprint`] — no tree enumeration, no exponential
/// tree-set diffing.
pub trait Parser: Recognizer {
    /// Closes the open session and returns the canonical shared parse
    /// forest of everything fed — the forest of **all** derivations, packed
    /// into a graph that stays polynomial where the tree count is
    /// exponential (or infinite). A rejected input yields the canonical
    /// empty forest (`count() == Finite(0)`), not an error.
    ///
    /// # Errors
    ///
    /// [`BackendError`] if no session is open, or for engine resource
    /// limits hit while extracting.
    fn end_forest(&mut self) -> Result<ParseForest, BackendError>;

    /// Parses a sequence of terminal kinds and returns its canonical
    /// shared forest — one streaming session under the hood (`begin`,
    /// `feed` each kind, [`end_forest`](Parser::end_forest)).
    ///
    /// # Errors
    ///
    /// As [`Recognizer::recognize`]; rejection is the empty forest.
    fn parse_forest(&mut self, kinds: &[&str]) -> Result<ParseForest, BackendError> {
        self.begin()?;
        for k in kinds {
            self.feed(k, k)?;
        }
        self.end_forest()
    }

    /// Counts the parse trees of an input — a shim over
    /// [`parse_forest`](Parser::parse_forest): exact, never enumerating,
    /// with explicit [`ParseCount::Overflow`] and
    /// [`ParseCount::Infinite`] outcomes.
    ///
    /// # Errors
    ///
    /// Same as [`Recognizer::recognize`]; a rejected input is
    /// `Ok(ParseCount::Finite(0))`.
    fn parse_count(&mut self, kinds: &[&str]) -> Result<ParseCount, BackendError> {
        Ok(self.parse_forest(kinds)?.count())
    }

    /// Enumerates up to `limits.max_trees` parse trees of an input — a
    /// shim over [`parse_forest`](Parser::parse_forest).
    ///
    /// # Errors
    ///
    /// Same as [`Recognizer::recognize`].
    fn parse_trees(
        &mut self,
        kinds: &[&str],
        limits: EnumLimits,
    ) -> Result<Vec<Tree>, BackendError> {
        Ok(self.parse_forest(kinds)?.trees(limits))
    }

    /// Clones this backend into an independent, freshly-reset instance
    /// without recompiling the grammar.
    ///
    /// The fork shares no mutable state with `self`: for PWD it duplicates
    /// the compiled arena (a flat memcpy — the expensive graph construction
    /// and hash-consing of [`Recognizer::prepare`] are *not* repeated), and
    /// for the stateless baselines it clones their tables. This is how a
    /// session pool turns one cached compile into N per-thread sessions.
    fn fork(&self) -> Box<dyn Parser>;
}

// ---------------------------------------------------------------------
// Session: the lifecycle façade
// ---------------------------------------------------------------------

enum BackendRef<'a> {
    Borrowed(&'a mut dyn Parser),
    Owned(Box<dyn Parser>),
}

impl BackendRef<'_> {
    fn get(&mut self) -> &mut dyn Parser {
        match self {
            BackendRef::Borrowed(b) => *b,
            BackendRef::Owned(b) => &mut **b,
        }
    }

    fn get_ref(&self) -> &dyn Parser {
        match self {
            BackendRef::Borrowed(b) => *b,
            BackendRef::Owned(b) => &**b,
        }
    }
}

/// An incremental parse over any [`Parser`] backend: the streaming façade
/// of the unified API.
///
/// `open_session → feed/feed_all → checkpoint/rollback → finish`, with
/// tokens arriving as kind/text pairs, lexeme slices, or — the fused
/// pipeline — straight from a zero-copy [`TokenSource`]
/// ([`feed_source`](Session::feed_source)).
///
/// A session either borrows its backend ([`Session::open`] — the
/// single-caller shape) or owns it ([`Session::owned`] — the pooled-service
/// shape, where the backend is recovered for reuse with
/// [`finish_and_release`](Session::finish_and_release)).
///
/// **Checkpoint = saved derivative**: see [`Checkpoint`]. Speculative
/// prefixes (editor lookahead, a REPL line being typed) are fed, and on
/// retraction rolled back, without re-parsing the committed prefix.
///
/// **Error recovery** is a per-session opt-in
/// ([`enable_recovery`](Session::enable_recovery)): with a
/// [`RecoveryBudget`] installed, every feed path repairs dead feeds
/// (substitute / insert / skip, scored by lookahead survival — see
/// [`crate::recover`]) instead of going dead, accumulating one spanned
/// [`Diagnostic`] per repair, surfaced incrementally via
/// [`diagnostics`](Session::diagnostics) and finally via
/// [`finish_with_diagnostics`](Session::finish_with_diagnostics) /
/// [`finish_forest_diagnostics`](Session::finish_forest_diagnostics).
/// With recovery off (the default) nothing changes — not even a
/// checkpoint is taken per feed.
///
/// **Incremental reparse** is a second per-session opt-in
/// ([`enable_incremental`](Session::enable_incremental)): the session then
/// remembers its fed tokens, maintains a bounded, evenly-spaced
/// *checkpoint ladder* over them, and supports
/// [`splice_tokens`](Session::splice_tokens) /
/// [`splice`](Session::splice) — apply a text or token edit and bring the
/// parse up to date by rolling back only to the nearest rung at or before
/// the damage and refeeding the relexed window, instead of reparsing from
/// scratch. See [`SpliceOutcome`] for what each splice reports.
pub struct Session<'a> {
    backend: BackendRef<'a>,
    recovery: Option<RecoveryState>,
    incremental: Option<IncrementalState>,
}

/// Upper bound on checkpoint-ladder rungs per session. When the ladder
/// fills, the rung stride doubles and every rung off the new stride is
/// dropped — the ladder stays evenly spaced and bounded while the worst
/// rollback overshoot stays within one stride of the damage point.
const MAX_RUNGS: usize = 256;

/// The per-session bookkeeping behind [`Session::splice_tokens`]: the fed
/// token history (the splice coordinate system), the memoized per-position
/// state signatures (the convergence fast path's oracle), and the
/// checkpoint ladder (the bounded set of rollback targets).
struct IncrementalState {
    /// Every fed token as `(kind, text)`; `history.len()` tracks
    /// `tokens_fed` exactly.
    history: Vec<(String, String)>,
    /// `sigs[k]` = backend state signature after `k` tokens (`None` when
    /// the backend cannot witness one soundly); always `history.len() + 1`
    /// entries.
    sigs: Vec<Option<StateSignature>>,
    /// Ladder rungs `(position, checkpoint)`, sorted by position; rung 0 at
    /// position 0 always exists, so every splice has a restorable target.
    ladder: Vec<(usize, Checkpoint)>,
    /// Current rung spacing (doubles when the ladder would exceed
    /// [`MAX_RUNGS`]).
    stride: usize,
    /// Cumulative splice counters, surfaced through [`Session::metrics`].
    tokens_reused: u64,
    tokens_refed: u64,
    ladder_rollback_distance: u64,
}

impl IncrementalState {
    /// Halves the ladder density (doubling the laying stride) until the
    /// rung count is back under [`MAX_RUNGS`]. Thins by entry index, not
    /// position alignment: rungs re-anchored after a convergence jump sit
    /// at delta-shifted (possibly unaligned) positions and must survive
    /// proportionally.
    fn enforce_rung_cap(&mut self) {
        while self.ladder.len() > MAX_RUNGS {
            self.stride *= 2;
            let mut idx = 0usize;
            self.ladder.retain(|_| {
                idx += 1;
                (idx - 1).is_multiple_of(2)
            });
        }
    }
}

/// What one [`Session::splice_tokens`] / [`Session::splice`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpliceOutcome {
    /// Position (tokens fed) of the checkpoint-ladder rung the splice
    /// restored — the reparse re-entry point.
    pub rung: usize,
    /// Tokens refed through the backend: rung→damage catch-up, the
    /// inserted tokens, and suffix tokens fed before convergence.
    pub refed: usize,
    /// Tokens of the new stream *not* refed (prefix below the rung plus
    /// suffix skipped by a convergence jump).
    pub reused: usize,
    /// New-stream position at which the convergence fast path proved the
    /// post-edit state equal to the memoized pre-edit state and jumped to
    /// the saved end state, skipping the rest of the suffix; `None` when
    /// the splice refed to the end.
    pub converged_at: Option<usize>,
    /// The session outcome after the splice (same as
    /// [`Session::outcome`]).
    pub outcome: FeedOutcome,
}

impl<'a> Session<'a> {
    /// Opens a session borrowing `backend` (discarding any session already
    /// open on it).
    ///
    /// # Errors
    ///
    /// [`BackendError`] for malformed grammars.
    pub fn open(backend: &'a mut dyn Parser) -> Result<Session<'a>, BackendError> {
        backend.begin()?;
        Ok(Session { backend: BackendRef::Borrowed(backend), recovery: None, incremental: None })
    }

    /// Opens a session that owns its backend — the shape a session pool
    /// hands out, recovered at [`finish_and_release`](Session::finish_and_release).
    ///
    /// # Errors
    ///
    /// [`BackendError`] for malformed grammars (the backend is dropped).
    pub fn owned(mut backend: Box<dyn Parser>) -> Result<Session<'static>, BackendError> {
        backend.begin()?;
        Ok(Session { backend: BackendRef::Owned(backend), recovery: None, incremental: None })
    }

    /// Turns on bounded-budget error recovery for the rest of this
    /// session. Subsequent feeds repair dead and unknown-kind tokens
    /// within `budget` (see [`crate::recover`] for the cost model) and
    /// record a [`Diagnostic`] per repair. Clean input is unaffected —
    /// byte-identical verdicts and forests, one extra checkpoint per feed.
    ///
    /// Recovery and incremental splicing are mutually exclusive (a repair
    /// rewrites the fed stream out from under the splice history); enabling
    /// recovery turns incremental mode off.
    pub fn enable_recovery(&mut self, budget: RecoveryBudget) {
        self.recovery = Some(RecoveryState::new(budget));
        self.incremental = None;
    }

    /// Turns on incremental reparse for this session: subsequent feeds are
    /// remembered (kind + text), a bounded checkpoint ladder is maintained
    /// over them, and edits can be applied with
    /// [`splice_tokens`](Session::splice_tokens) /
    /// [`splice`](Session::splice) instead of reparsing from scratch.
    ///
    /// Must be called on a fresh session (no tokens fed). Mutually
    /// exclusive with error recovery.
    ///
    /// # Errors
    ///
    /// [`BackendError`] if tokens were already fed or recovery is enabled.
    pub fn enable_incremental(&mut self) -> Result<(), BackendError> {
        if self.recovery.is_some() {
            return Err(BackendError::new(
                self.name(),
                "incremental splicing and error recovery are mutually exclusive on a session",
            ));
        }
        if self.backend.get_ref().tokens_fed() != 0 {
            return Err(BackendError::new(
                self.name(),
                "enable_incremental requires a fresh session (no tokens fed)",
            ));
        }
        let cp0 = self.backend.get().checkpoint()?;
        let sig0 = self.backend.get().state_signature();
        self.incremental = Some(IncrementalState {
            history: Vec::new(),
            sigs: vec![sig0],
            ladder: vec![(0, cp0)],
            stride: 1,
            tokens_reused: 0,
            tokens_refed: 0,
            ladder_rollback_distance: 0,
        });
        Ok(())
    }

    /// Is incremental reparse enabled on this session?
    pub fn incremental_enabled(&self) -> bool {
        self.incremental.is_some()
    }

    /// Is error recovery enabled on this session?
    pub fn recovery_enabled(&self) -> bool {
        self.recovery.is_some()
    }

    /// The diagnostics accumulated so far — live during feeding, so a
    /// REPL/LSP loop can surface errors per keystroke. Empty when
    /// recovery is off or the input has been clean.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        self.recovery.as_ref().map_or(&[], |r| &r.diagnostics)
    }

    /// Drains the accumulated diagnostics (they stop being returned by
    /// the `finish_*_diagnostics` closers).
    pub fn take_diagnostics(&mut self) -> Vec<Diagnostic> {
        self.recovery.as_mut().map_or_else(Vec::new, |r| std::mem::take(&mut r.diagnostics))
    }

    /// Feeds a pre-tokenized slice through the recovery driver, giving
    /// each token the next few as lookahead for repair scoring.
    fn feed_recovering_slice(&mut self, toks: &[InputToken<'_>]) -> Result<(), BackendError> {
        let rs = self.recovery.as_mut().expect("recovery enabled on this path");
        let la = rs.budget.lookahead;
        for i in 0..toks.len() {
            let end = (i + 1 + la).min(toks.len());
            recover::feed_recovering(self.backend.get(), rs, &toks[i], &toks[i + 1..end])?;
        }
        Ok(())
    }

    /// Runs the end-of-input repair (recovery on, viable, incomplete →
    /// bounded insertion search) before a closer computes the verdict.
    fn pre_finish(&mut self) -> Result<(), BackendError> {
        if let Some(rs) = self.recovery.as_mut() {
            recover::repair_eof(self.backend.get(), rs)?;
        }
        Ok(())
    }

    /// The backend's display name.
    pub fn name(&self) -> &'static str {
        self.backend.get_ref().name()
    }

    /// Feeds one token through the backend and, in incremental mode,
    /// records it in the splice bookkeeping. Every non-recovery feed path
    /// funnels through here (recovery and incremental are mutually
    /// exclusive, so recovery paths never need the bookkeeping).
    fn feed_tracked(&mut self, kind: &str, text: &str) -> Result<bool, BackendError> {
        let viable = self.backend.get().feed(kind, text)?;
        if self.incremental.is_some() {
            self.note_feed(kind, text)?;
        }
        Ok(viable)
    }

    /// Incremental-mode bookkeeping for one successfully fed token:
    /// remember it, memoize the post-feed state signature, and keep the
    /// checkpoint ladder bounded and evenly spaced.
    fn note_feed(&mut self, kind: &str, text: &str) -> Result<(), BackendError> {
        let sig = self.backend.get().state_signature();
        let fed = self.backend.get_ref().tokens_fed();
        let inc = self.incremental.as_mut().expect("incremental enabled on this path");
        inc.history.push((kind.to_string(), text.to_string()));
        inc.sigs.push(sig);
        debug_assert_eq!(inc.history.len(), fed, "splice history tracks the backend exactly");
        if fed.is_multiple_of(inc.stride) {
            let cp = self.backend.get().checkpoint()?;
            let inc = self.incremental.as_mut().expect("checked above");
            inc.ladder.push((fed, cp));
            inc.enforce_rung_cap();
        }
        Ok(())
    }

    /// Refeeds the already-recorded token at history position `pos` during
    /// a splice. The history entry is already in place, so this is
    /// [`feed_tracked`](Session::feed_tracked) minus the push: backend
    /// feed, in-place signature overwrite, rung-laying.
    fn refeed_recorded(&mut self, pos: usize) -> Result<(), BackendError> {
        let inc = self.incremental.as_ref().expect("incremental enabled on this path");
        let (kind, text) = inc.history[pos].clone();
        self.backend.get().feed(&kind, &text)?;
        let sig = self.backend.get().state_signature();
        let fed = self.backend.get_ref().tokens_fed();
        debug_assert_eq!(fed, pos + 1, "refeed tracks the backend exactly");
        let inc = self.incremental.as_mut().expect("checked above");
        inc.sigs[pos + 1] = sig;
        if fed.is_multiple_of(inc.stride) {
            let cp = self.backend.get().checkpoint()?;
            let inc = self.incremental.as_mut().expect("checked above");
            inc.ladder.push((fed, cp));
            inc.enforce_rung_cap();
        }
        Ok(())
    }

    /// Feeds one token and reports the rich outcome (viability plus
    /// sentence-hood of the new prefix; the sentence probe runs on demand —
    /// use the raw [`Recognizer::feed`] hook to skip it).
    ///
    /// # Errors
    ///
    /// See [`Recognizer::feed`].
    pub fn feed(&mut self, kind: &str, text: &str) -> Result<FeedOutcome, BackendError> {
        let viable = match self.recovery.as_mut() {
            Some(rs) => {
                let tok = InputToken::new(kind, text, None);
                recover::feed_recovering(self.backend.get(), rs, &tok, &[])?
            }
            None => self.feed_tracked(kind, text)?,
        };
        if !viable {
            return Ok(FeedOutcome::Dead);
        }
        self.outcome()
    }

    /// Feeds one kind, using the kind as its own text.
    ///
    /// # Errors
    ///
    /// See [`Recognizer::feed`].
    pub fn feed_kind(&mut self, kind: &str) -> Result<FeedOutcome, BackendError> {
        self.feed(kind, kind)
    }

    /// Feeds a sequence of kinds; returns the outcome after the last one
    /// (one sentence probe per call, not per token).
    ///
    /// # Errors
    ///
    /// See [`Recognizer::feed`].
    pub fn feed_all(&mut self, kinds: &[&str]) -> Result<FeedOutcome, BackendError> {
        if self.recovery.is_some() {
            let toks: Vec<InputToken> = kinds.iter().map(|k| InputToken::new(k, k, None)).collect();
            self.feed_recovering_slice(&toks)?;
            return self.outcome();
        }
        for k in kinds {
            self.feed_tracked(k, k)?;
        }
        self.outcome()
    }

    /// Feeds a lexeme slice (kind + text per token); returns the outcome
    /// after the last one (one sentence probe per call, not per token).
    ///
    /// # Errors
    ///
    /// See [`Recognizer::feed`].
    pub fn feed_lexemes(&mut self, lexemes: &[Lexeme]) -> Result<FeedOutcome, BackendError> {
        if self.recovery.is_some() {
            let toks: Vec<InputToken> = lexemes
                .iter()
                .map(|l| {
                    InputToken::new(
                        &l.kind,
                        &l.text,
                        Some(Span::new(l.offset, l.offset + l.text.len())),
                    )
                })
                .collect();
            self.feed_recovering_slice(&toks)?;
            return self.outcome();
        }
        for l in lexemes {
            self.feed_tracked(&l.kind, &l.text)?;
        }
        self.outcome()
    }

    /// Drains a [`TokenSource`] into the session — the fused lex+parse
    /// path: each token is matched, borrowed, fed, and dropped before the
    /// next is pulled, with no intermediate vector.
    ///
    /// # Errors
    ///
    /// Lexing errors are wrapped in a [`BackendError`]; feeding errors as
    /// in [`Recognizer::feed`].
    pub fn feed_source(&mut self, src: &mut dyn TokenSource) -> Result<FeedOutcome, BackendError> {
        if self.recovery.is_some() {
            // Recovery needs lookahead and owned tokens, so this path
            // trades the zero-copy fusion for a buffered drain. Lex errors
            // become diagnostics (the streaming lexer resynchronizes past
            // the bad bytes itself) instead of aborting the parse.
            let mut toks = Vec::new();
            while let Some(item) = src.next_token() {
                match item {
                    Ok(t) => toks.push(InputToken::owned(t.kind, t.text, Some(t.span))),
                    Err(e) => {
                        let rs = self.recovery.as_mut().expect("recovery checked above");
                        rs.note_lex_error(&e);
                    }
                }
            }
            self.feed_recovering_slice(&toks)?;
            return self.outcome();
        }
        while let Some(item) = src.next_token() {
            let t = match item {
                Ok(t) => t,
                Err(e) => return Err(BackendError::new(self.name(), e)),
            };
            self.feed_tracked(t.kind, t.text)?;
        }
        self.outcome()
    }

    /// The current outcome (without feeding anything).
    ///
    /// # Errors
    ///
    /// [`BackendError`] if the backend lost its session (a bug).
    pub fn outcome(&mut self) -> Result<FeedOutcome, BackendError> {
        let backend = self.backend.get();
        if !backend.is_viable() {
            return Ok(FeedOutcome::Dead);
        }
        Ok(FeedOutcome::Viable { prefix_is_sentence: backend.prefix_is_sentence()? })
    }

    /// Is the prefix fed so far a complete sentence?
    ///
    /// # Errors
    ///
    /// [`BackendError`] if the backend lost its session (a bug).
    pub fn prefix_is_sentence(&mut self) -> Result<bool, BackendError> {
        let backend = self.backend.get();
        Ok(backend.is_viable() && backend.prefix_is_sentence()?)
    }

    /// Can some continuation still be accepted?
    pub fn is_viable(&self) -> bool {
        self.backend.get_ref().is_viable()
    }

    /// Tokens fed so far.
    pub fn tokens_fed(&self) -> usize {
        self.backend.get_ref().tokens_fed()
    }

    /// Enables or disables observability on the underlying backend (see
    /// [`Recognizer::set_obs`]).
    pub fn set_obs(&mut self, enabled: bool) {
        self.backend.get().set_obs(enabled);
    }

    /// The backend's live instrumentation counters (and, with observability
    /// enabled, its per-phase latency histograms). In incremental mode the
    /// session overlays its cumulative splice counters
    /// ([`BackendMetrics::tokens_reused`], [`BackendMetrics::tokens_refed`],
    /// [`BackendMetrics::ladder_rollback_distance`]).
    pub fn metrics(&self) -> BackendMetrics {
        let mut m = self.backend.get_ref().metrics();
        if let Some(inc) = &self.incremental {
            m.tokens_reused = inc.tokens_reused;
            m.tokens_refed = inc.tokens_refed;
            m.ladder_rollback_distance = inc.ladder_rollback_distance;
        }
        m
    }

    /// Saves the current position — for PWD, the derivative `D_{t1…tk}(L)`
    /// itself.
    ///
    /// # Errors
    ///
    /// See [`Recognizer::checkpoint`].
    pub fn checkpoint(&mut self) -> Result<Checkpoint, BackendError> {
        self.backend.get().checkpoint()
    }

    /// Rolls back to a checkpoint taken earlier in this session, on the
    /// current timeline. Checkpoints taken *after* the restored position
    /// become invalid (and stay invalid even if the positions are re-fed);
    /// the restored checkpoint itself, and any earlier one, can be
    /// restored again.
    ///
    /// # Errors
    ///
    /// See [`Recognizer::rollback`].
    pub fn rollback(&mut self, cp: &Checkpoint) -> Result<(), BackendError> {
        self.backend.get().rollback(cp)?;
        if let Some(inc) = self.incremental.as_mut() {
            // The splice history follows the timeline: positions after the
            // restored one no longer exist, and neither do the ladder rungs
            // that pointed at them.
            inc.history.truncate(cp.tokens_fed());
            inc.sigs.truncate(cp.tokens_fed() + 1);
            inc.ladder.retain(|(pos, _)| *pos <= cp.tokens_fed());
        }
        Ok(())
    }

    /// Applies a token-level edit to the fed stream — replace
    /// `remove` tokens starting at position `at` with `insert` — and brings
    /// the parse up to date with maximal reuse outside the damaged region.
    ///
    /// The reparse re-enters from the nearest checkpoint-ladder rung at or
    /// before `at` (PWD restores the saved derivative; Earley the chart
    /// prefix; GLR the saved GSS frontier) and refeeds only from there.
    /// While refeeding the undamaged suffix, backends that witness sound
    /// state signatures ([`Recognizer::state_signature`]) get the
    /// **convergence fast path**: the moment the post-edit state equals the
    /// memoized pre-edit state at the same token alignment, the session
    /// jumps straight to the saved pre-edit end state instead of refeeding
    /// the rest — a single-token edit in a large buffer then costs a
    /// handful of feeds, not half the buffer.
    ///
    /// Checkpoints the caller took at or before the rung stay restorable;
    /// checkpoints after it are invalidated — exactly the
    /// [`rollback`](Session::rollback) timeline semantics, because the
    /// rung restore *is* a rollback.
    ///
    /// # Errors
    ///
    /// [`BackendError`] if incremental mode is off, the range exceeds the
    /// fed stream, a kind is outside the grammar, or the backend hits a
    /// resource limit mid-refeed (the session should then be discarded).
    pub fn splice_tokens(
        &mut self,
        at: usize,
        remove: usize,
        insert: &[(&str, &str)],
    ) -> Result<SpliceOutcome, BackendError> {
        let name = self.name();
        let Some(inc) = self.incremental.as_ref() else {
            return Err(BackendError::new(
                name,
                "splice requires enable_incremental() on a fresh session",
            ));
        };
        let len = inc.history.len();
        if at + remove > len {
            return Err(BackendError::new(
                name,
                format!("splice range {at}..{} exceeds the {len} fed tokens", at + remove),
            ));
        }
        if remove == 0 && insert.is_empty() {
            let outcome = self.outcome()?;
            return Ok(SpliceOutcome {
                rung: at,
                refed: 0,
                reused: len,
                converged_at: None,
                outcome,
            });
        }
        if at == len && remove == 0 {
            // Pure append: the current state is already the re-entry point.
            for (k, t) in insert {
                self.feed_tracked(k, t)?;
            }
            let inc = self.incremental.as_mut().expect("checked above");
            inc.tokens_refed += insert.len() as u64;
            inc.tokens_reused += len as u64;
            let outcome = self.outcome()?;
            return Ok(SpliceOutcome {
                rung: at,
                refed: insert.len(),
                reused: len,
                converged_at: None,
                outcome,
            });
        }

        // The pre-edit end state: the convergence jump's landing target.
        let end_cp = self.backend.get().checkpoint()?;

        // Nearest ladder rung at or before the damage start (rung 0 always
        // exists).
        let inc = self.incremental.as_mut().expect("checked above");
        let idx = inc.ladder.partition_point(|(pos, _)| *pos <= at);
        let (rung_pos, rung_cp) = inc.ladder[idx - 1].clone();

        // Roll back first: admission is checked before any state is
        // mutated, so a refused rollback leaves the session exactly as it
        // was — and the bookkeeping below can then edit in place instead of
        // detaching the whole suffix. A same-length edit costs O(refeed
        // window), not O(suffix): the only per-splice O(suffix) work left
        // is a memcpy of the `Copy` signature slice.
        self.backend.get().rollback(&rung_cp)?;

        let inc = self.incremental.as_mut().expect("checked above");
        let ladder_suffix = inc.ladder.split_off(idx);
        inc.ladder_rollback_distance += (at - rung_pos) as u64;

        let new_len = len - remove + insert.len();
        // Old-position signatures at and beyond the damage, snapshotted for
        // the convergence compare (the in-place edit below shifts them and
        // the refeed overwrites them).
        let old_sigs: Vec<Option<StateSignature>> = inc.sigs[at..].to_vec();
        // Edit the recorded stream in place. Signature positions after each
        // removed token die; the inserted tokens' slots are placeholders
        // the refeed below always overwrites (inserted tokens are always
        // refed); everything beyond shifts by the edit's length delta.
        inc.history.splice(
            at..at + remove,
            insert.iter().map(|(k, t)| ((*k).to_string(), (*t).to_string())),
        );
        inc.sigs.splice(at + 1..at + 1 + remove, std::iter::repeat_n(None, insert.len()));

        let mut refed = 0usize;
        // Catch-up (undamaged tokens between the rung and the edit) plus
        // the inserted tokens — all already in the history.
        for pos in rung_pos..at + insert.len() {
            self.refeed_recorded(pos)?;
            refed += 1;
        }
        // The undamaged suffix, with a convergence check before each feed.
        let mut converged_at = None;
        for new_pos in at + insert.len()..new_len {
            // Old-coordinate position aligned with the current state.
            let old_pos = new_pos + remove - insert.len();
            if old_pos > rung_pos {
                let inc = self.incremental.as_ref().expect("checked above");
                let cur = inc.sigs[new_pos];
                let old = old_sigs[old_pos - at];
                if let (Some(cur), Some(old)) = (cur, old) {
                    // Equal signatures ⇒ equal languages ⇒ feeding the
                    // identical remaining suffix must land on the saved
                    // pre-edit end state. Jump there — the history and the
                    // shifted signature tail are already in place. A
                    // backend that refuses the jump just keeps refeeding.
                    if cur == old && self.backend.get().splice_restore(&end_cp, new_len).is_ok() {
                        converged_at = Some(new_pos);
                        // Keep the ladder dense across the jumped-over
                        // range: from the convergence point on, the old
                        // timeline's states recur on the new one (shifted
                        // by the edit's length delta), so the old rungs
                        // there are re-stamped onto the current timeline
                        // instead of being thrown away. Without this,
                        // repeated edits thin the ladder above each edit
                        // point and later splices pay ever-longer
                        // catch-up refeeds.
                        let mut revived: Vec<(usize, Checkpoint)> = Vec::new();
                        for (pos, cp) in &ladder_suffix {
                            if *pos < old_pos {
                                continue;
                            }
                            let shifted = pos + insert.len() - remove;
                            if shifted >= new_len {
                                continue;
                            }
                            if let Some(re) = self.backend.get().reanchor_checkpoint(cp, shifted) {
                                revived.push((shifted, re));
                            }
                        }
                        // The landing position itself is always a rung.
                        let cp = self.backend.get().checkpoint()?;
                        revived.push((new_len, cp));
                        let inc = self.incremental.as_mut().expect("checked above");
                        inc.ladder.extend(revived);
                        inc.enforce_rung_cap();
                        break;
                    }
                }
            }
            self.refeed_recorded(new_pos)?;
            refed += 1;
        }

        let inc = self.incremental.as_mut().expect("checked above");
        debug_assert_eq!(inc.history.len(), new_len, "splice rebuilt the full token stream");
        inc.tokens_refed += refed as u64;
        inc.tokens_reused += (new_len - refed) as u64;
        let outcome = self.outcome()?;
        Ok(SpliceOutcome { rung: rung_pos, refed, reused: new_len - refed, converged_at, outcome })
    }

    /// Applies a text edit — replace bytes `start..end` of `buf` with
    /// `replacement` — by splicing the buffer (incremental relex of a
    /// bounded window, see [`SourceBuffer::splice`]) and then splicing the
    /// resulting token edit into the parse via
    /// [`splice_tokens`](Session::splice_tokens). The buffer and the
    /// session must have been kept in step (the session fed exactly the
    /// buffer's lexemes).
    ///
    /// # Errors
    ///
    /// Lexing errors are wrapped in a [`BackendError`] with the buffer
    /// unchanged; see [`splice_tokens`](Session::splice_tokens) for the
    /// rest. If the *parse* splice fails after the buffer committed, the
    /// buffer and session are out of step — discard the session.
    pub fn splice(
        &mut self,
        buf: &mut SourceBuffer<'_>,
        start: usize,
        end: usize,
        replacement: &str,
    ) -> Result<SpliceOutcome, BackendError> {
        if self.incremental.is_none() {
            return Err(BackendError::new(
                self.name(),
                "splice requires enable_incremental() on a fresh session",
            ));
        }
        let edit =
            buf.splice(start, end, replacement).map_err(|e| BackendError::new(self.name(), e))?;
        let pairs: Vec<(&str, &str)> =
            edit.inserted.iter().map(|l| (l.kind.as_str(), l.text.as_str())).collect();
        self.splice_tokens(edit.start, edit.removed, &pairs)
    }

    /// Closes the session: was the full fed input accepted?
    ///
    /// # Errors
    ///
    /// [`BackendError`] if the backend lost its session (a bug).
    pub fn finish(mut self) -> Result<bool, BackendError> {
        self.pre_finish()?;
        self.backend.get().end()
    }

    /// Closes the session and returns the verdict together with every
    /// diagnostic recovery recorded — the recovery-aware twin of
    /// [`finish`](Session::finish). With recovery off the diagnostics are
    /// always empty.
    ///
    /// # Errors
    ///
    /// [`BackendError`] if the backend lost its session (a bug).
    pub fn finish_with_diagnostics(mut self) -> Result<(bool, Vec<Diagnostic>), BackendError> {
        self.pre_finish()?;
        let diags = self.take_diagnostics();
        let verdict = self.backend.get().end()?;
        Ok((verdict, diags))
    }

    /// Closes the session and, if the backend is owned, hands it back for
    /// pooling/reuse (`None` for borrowed sessions — the caller still holds
    /// the backend).
    pub fn finish_and_release(mut self) -> (Result<bool, BackendError>, Option<Box<dyn Parser>>) {
        let pre = self.pre_finish();
        let verdict = pre.and(self.backend.get().end());
        match self.backend {
            BackendRef::Borrowed(_) => (verdict, None),
            BackendRef::Owned(b) => (verdict, Some(b)),
        }
    }

    /// Closes the session and returns the canonical shared parse forest of
    /// everything fed (the empty forest if the input was rejected) — the
    /// streaming twin of [`Parser::parse_forest`].
    ///
    /// # Errors
    ///
    /// See [`Parser::end_forest`].
    pub fn finish_forest(mut self) -> Result<ParseForest, BackendError> {
        self.pre_finish()?;
        self.backend.get().end_forest()
    }

    /// Closes the session and returns the canonical forest of the
    /// (possibly repaired) input **and** the diagnostics explaining every
    /// repair — the `(Forest, Vec<Diagnostic>)` shape of a
    /// recovery-aware parse. A prefix recovery could not complete yields
    /// the empty forest plus the diagnostics that got it there.
    ///
    /// # Errors
    ///
    /// See [`Parser::end_forest`].
    pub fn finish_forest_diagnostics(
        mut self,
    ) -> Result<(ParseForest, Vec<Diagnostic>), BackendError> {
        self.pre_finish()?;
        let diags = self.take_diagnostics();
        let forest = self.backend.get().end_forest()?;
        Ok((forest, diags))
    }

    /// Closes the session with a forest and, if the backend is owned, hands
    /// it back for pooling/reuse.
    pub fn finish_forest_and_release(
        mut self,
    ) -> (Result<ParseForest, BackendError>, Option<Box<dyn Parser>>) {
        let pre = self.pre_finish();
        let forest = pre.and(self.backend.get().end_forest());
        match self.backend {
            BackendRef::Borrowed(_) => (forest, None),
            BackendRef::Owned(b) => (forest, Some(b)),
        }
    }
}

impl fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("backend", &self.name())
            .field("tokens_fed", &self.tokens_fed())
            .field("viable", &self.is_viable())
            .field("owned", &matches!(self.backend, BackendRef::Owned(_)))
            .finish()
    }
}

// ---------------------------------------------------------------------
// PWD
// ---------------------------------------------------------------------

/// The PWD engine behind the uniform API: a [`Compiled`] grammar driven
/// through the core engine's ownable session state, reusing one arena
/// across runs via epoch reset.
pub struct PwdBackend {
    compiled: Compiled,
    label: &'static str,
    runs: u64,
    session: Option<SessionState>,
    /// Stamps and validates checkpoints (a stale one would resurrect nodes
    /// from a reset epoch).
    guard: SessionGuard,
}

impl PwdBackend {
    /// Compiles the paper's improved configuration.
    pub fn improved(cfg: &Cfg) -> PwdBackend {
        PwdBackend::with_config(cfg, ParserConfig::improved(), "pwd-improved")
    }

    /// Compiles the Might et al. (2011) configuration.
    pub fn original_2011(cfg: &Cfg) -> PwdBackend {
        PwdBackend::with_config(cfg, ParserConfig::original_2011(), "pwd-original")
    }

    /// Compiles the improved configuration in recognize mode, where the
    /// lazy derivative automaton DFA-izes the hot loop: steady-state
    /// tokens are consumed by a dense transition-table walk instead of
    /// graph construction. Recognition-only — [`Parser::end_forest`]
    /// reports an error because recognize mode builds no forests.
    pub fn dfa(cfg: &Cfg) -> PwdBackend {
        let config = ParserConfig { mode: ParseMode::Recognize, ..ParserConfig::improved() };
        PwdBackend::with_config(cfg, config, "pwd-dfa")
    }

    /// Compiles an arbitrary engine configuration under a display label.
    pub fn with_config(cfg: &Cfg, config: ParserConfig, label: &'static str) -> PwdBackend {
        PwdBackend {
            compiled: Compiled::compile(cfg, config),
            label,
            runs: 0,
            session: None,
            guard: SessionGuard::closed(),
        }
    }

    /// Wraps an already-compiled engine (e.g. a clone of a cached
    /// [`Compiled`] template) without paying compilation again.
    pub fn from_compiled(mut compiled: Compiled, label: &'static str) -> PwdBackend {
        compiled.lang.reset();
        PwdBackend { compiled, label, runs: 0, session: None, guard: SessionGuard::closed() }
    }

    /// The underlying compiled engine, for backend-specific inspection.
    pub fn compiled(&self) -> &Compiled {
        &self.compiled
    }

    fn err(&self, e: PwdError) -> BackendError {
        BackendError::new(self.label, e)
    }
}

impl Recognizer for PwdBackend {
    fn prepare(cfg: &Cfg) -> PwdBackend {
        PwdBackend::improved(cfg)
    }

    fn name(&self) -> &'static str {
        self.label
    }

    fn begin(&mut self) -> Result<(), BackendError> {
        self.session = None;
        self.compiled.lang.reset();
        self.runs += 1;
        self.guard = SessionGuard::open();
        let start = self.compiled.start;
        let state = SessionState::start(&mut self.compiled.lang, start).map_err(|e| self.err(e))?;
        self.session = Some(state);
        Ok(())
    }

    fn feed(&mut self, kind: &str, text: &str) -> Result<bool, BackendError> {
        // Interning happens here, at the memo boundary: the streaming lexer
        // hands out borrowed text, and only the engine's interner turns it
        // into a `TokKey` (value keying) or folds it into a `TermId` path
        // (class keying).
        let label = self.label;
        let tok = self.compiled.token(kind, text).ok_or_else(|| {
            BackendError::unknown_kind(label, format!("unknown terminal {kind:?}"))
        })?;
        let Some(state) = self.session.as_mut() else {
            return Err(BackendError::no_session(label));
        };
        // The core session counts the token even on a budget error, so the
        // guard must too — count first, then feed.
        self.guard.on_feed();
        match state.feed(&mut self.compiled.lang, &tok) {
            Ok(crate::core::FeedOutcome::Dead) => Ok(false),
            Ok(crate::core::FeedOutcome::Viable { .. }) => Ok(true),
            Err(e) => Err(BackendError::new(label, e)),
        }
    }

    fn tokens_fed(&self) -> usize {
        self.session.as_ref().map_or(0, SessionState::tokens_fed)
    }

    fn is_viable(&self) -> bool {
        self.session.as_ref().is_none_or(SessionState::is_viable)
    }

    fn prefix_is_sentence(&mut self) -> Result<bool, BackendError> {
        let Some(state) = self.session.as_ref() else {
            return Err(BackendError::no_session(self.label));
        };
        Ok(state.prefix_is_sentence(&mut self.compiled.lang))
    }

    fn checkpoint(&mut self) -> Result<Checkpoint, BackendError> {
        let Some(state) = self.session.as_ref() else {
            return Err(BackendError::no_session(self.label));
        };
        Ok(self.guard.stamp(CheckpointState::Pwd(state.checkpoint())))
    }

    fn rollback(&mut self, cp: &Checkpoint) -> Result<(), BackendError> {
        let Some(state) = self.session.as_mut() else {
            return Err(BackendError::no_session(self.label));
        };
        let CheckpointState::Pwd(inner) = &cp.state else {
            return Err(BackendError::stale_checkpoint(self.label));
        };
        self.guard.admit(cp, self.label)?;
        if self.compiled.lang.budget_exhausted() {
            // The arena is full; restoring the position would only re-trip
            // the budget on the next feed. Refuse, so callers learn the
            // session is unrecoverable instead of retrying forever.
            return Err(BackendError::new(
                self.label,
                "node budget exhausted; the session cannot be resumed (reset the backend)",
            ));
        }
        state.rollback(inner);
        self.guard.on_rollback(cp.tokens);
        Ok(())
    }

    fn end(&mut self) -> Result<bool, BackendError> {
        let Some(state) = self.session.take() else {
            return Err(BackendError::no_session(self.label));
        };
        self.guard = SessionGuard::closed();
        let accepted = state.prefix_is_sentence(&mut self.compiled.lang);
        state.finish(&mut self.compiled.lang);
        Ok(accepted)
    }

    fn reset(&mut self) {
        self.session = None;
        self.guard = SessionGuard::closed();
        self.compiled.lang.reset();
    }

    fn set_obs(&mut self, enabled: bool) {
        if enabled {
            self.compiled.lang.enable_obs(false);
        } else {
            self.compiled.lang.disable_obs();
        }
    }

    fn expected_kinds(&mut self) -> Vec<String> {
        // Derivative-based candidate discovery: clone the session state
        // (one small Copy-able struct — the arena is shared) and trial-feed
        // each grammar terminal. A candidate is expected iff its derivative
        // from the current state is non-empty, which for PWD is *precise*
        // viability. Warm automaton rows and memo entries make repeat
        // probes cheap.
        let Some(state) = self.session.as_ref() else {
            return Vec::new();
        };
        if !state.is_viable() || self.compiled.lang.budget_exhausted() {
            return Vec::new();
        }
        let names: Vec<String> = self.compiled.terminal_names().to_vec();
        let mut out = Vec::new();
        let mut probes = 0u64;
        for name in names {
            let Some(tok) = self.compiled.token(&name, &name) else {
                continue;
            };
            let state = self.session.as_ref().expect("session checked above");
            let mut trial = state.clone();
            probes += 1;
            if matches!(
                trial.feed(&mut self.compiled.lang, &tok),
                Ok(crate::core::FeedOutcome::Viable { .. })
            ) {
                out.push(name);
            }
        }
        self.compiled.lang.note_recovery_probes(probes);
        out.sort();
        out
    }

    fn record_recover_span(&mut self, nanos: u64) {
        self.compiled.lang.note_phase(Phase::Recover, nanos);
    }

    fn state_signature(&mut self) -> Option<StateSignature> {
        // Sound only in recognize mode: equal recognize structure does not
        // imply equal *forests* (parse-mode states carry partial parse
        // trees the signature cannot see), and Definition-5 naming makes
        // nodes position-dependent, defeating cross-position comparison.
        let cfg = self.compiled.lang.config();
        if cfg.mode != ParseMode::Recognize || cfg.naming {
            return None;
        }
        let current = self.session.as_ref()?.current();
        Some(self.compiled.lang.state_signature(current))
    }

    fn splice_restore(&mut self, cp: &Checkpoint, tokens: usize) -> Result<(), BackendError> {
        let Some(state) = self.session.as_mut() else {
            return Err(BackendError::no_session(self.label));
        };
        let CheckpointState::Pwd(inner) = &cp.state else {
            return Err(BackendError::stale_checkpoint(self.label));
        };
        // Deliberately below the timeline guard's position admission — the
        // jump target was invalidated by the splice's own rollback; only
        // session identity is checked. The arena is append-only within a
        // session, so the saved node is still alive.
        if cp.session != self.guard.session {
            return Err(BackendError::stale_checkpoint(self.label));
        }
        if self.compiled.lang.budget_exhausted() {
            return Err(BackendError::new(
                self.label,
                "node budget exhausted; the session cannot be resumed (reset the backend)",
            ));
        }
        state.rollback(inner);
        state.set_tokens_fed(tokens);
        self.guard.extend_to(tokens);
        Ok(())
    }

    fn reanchor_checkpoint(&mut self, cp: &Checkpoint, tokens: usize) -> Option<Checkpoint> {
        if cp.session != self.guard.session {
            return None;
        }
        let CheckpointState::Pwd(inner) = &cp.state else { return None };
        // The saved node is still alive (append-only arena); only the
        // position and timeline mark need re-stamping. The mark at `tokens`
        // exists because the convergence jump's `extend_to` already wrote
        // the current era up to the landing position.
        let mark = *self.guard.marks.get(tokens)?;
        Some(Checkpoint {
            session: cp.session,
            tokens,
            mark,
            state: CheckpointState::Pwd(inner.at_position(tokens)),
        })
    }

    fn metrics(&self) -> BackendMetrics {
        let m = self.compiled.lang.metrics();
        BackendMetrics {
            runs: self.runs,
            work: m.derive_calls,
            live_state: self.compiled.lang.node_count() as u64,
            memo_hits: m.derive_hits(),
            memo_misses: m.derive_uncached,
            template_shares: m.template_shares,
            template_instantiations: m.template_instantiations,
            auto_rows_built: m.auto_rows_built,
            auto_table_hits: m.auto_table_hits,
            auto_fallbacks: m.auto_fallbacks,
            arena_bytes: self.compiled.lang.arena_bytes() as u64,
            tokens_reused: 0,
            tokens_refed: 0,
            ladder_rollback_distance: 0,
            phases: self.compiled.lang.obs_phases().map(|p| Box::new(p.clone())),
        }
    }
}

impl Parser for PwdBackend {
    fn fork(&self) -> Box<dyn Parser> {
        Box::new(PwdBackend::from_compiled(self.compiled.clone(), self.label))
    }

    fn end_forest(&mut self) -> Result<ParseForest, BackendError> {
        if self.compiled.lang.config().mode == ParseMode::Recognize {
            return Err(BackendError::new(
                self.label,
                "recognize-mode backend builds no forests; use end() for the verdict",
            ));
        }
        let Some(state) = self.session.take() else {
            return Err(BackendError::no_session(self.label));
        };
        self.guard = SessionGuard::closed();
        let accepted = state.prefix_is_sentence(&mut self.compiled.lang);
        let result = if accepted {
            // Extract the raw derivative forest (reductions and all) and
            // normalize it into the canonical cross-backend form.
            let root = state.forest(&mut self.compiled.lang).map_err(|e| self.err(e))?;
            self.compiled
                .lang
                .canonical_forest(root)
                .map_err(|e| BackendError::new(self.label, e))?
        } else {
            ParseForest::rejected()
        };
        state.finish(&mut self.compiled.lang);
        Ok(result)
    }
}

// ---------------------------------------------------------------------
// Baseline observability helpers
// ---------------------------------------------------------------------

// The baselines keep their own `Option<Box<PhaseStats>>` sink (the PWD
// engine's lives inside `Language`); these two helpers enforce the same
// zero-overhead contract — no clock read without a sink, nothing at all
// without the `obs` feature.
#[inline]
fn obs_start(obs: &Option<Box<PhaseStats>>) -> Option<std::time::Instant> {
    #[cfg(feature = "obs")]
    if obs.is_some() {
        return Some(std::time::Instant::now());
    }
    #[cfg(not(feature = "obs"))]
    let _ = obs;
    None
}

#[inline]
fn obs_end(obs: &mut Option<Box<PhaseStats>>, phase: Phase, started: Option<std::time::Instant>) {
    #[cfg(feature = "obs")]
    if let (Some(stats), Some(t0)) = (obs.as_deref_mut(), started) {
        stats.record(phase, t0.elapsed().as_nanos() as u64);
    }
    #[cfg(not(feature = "obs"))]
    let _ = (obs, phase, started);
}

#[inline]
fn obs_install(obs: &mut Option<Box<PhaseStats>>, enabled: bool) {
    #[cfg(feature = "obs")]
    {
        *obs = enabled.then(|| Box::new(PhaseStats::new()));
    }
    #[cfg(not(feature = "obs"))]
    let _ = (obs, enabled);
}

// ---------------------------------------------------------------------
// Earley
// ---------------------------------------------------------------------

/// The Earley baseline behind the uniform API: the incremental chart is the
/// session, a checkpoint is a chart-prefix length.
pub struct EarleyBackend {
    parser: EarleyParser,
    runs: u64,
    last: EarleyStats,
    chart: Option<EarleyChart>,
    guard: SessionGuard,
    /// Tokens fed to the open session (`(terminal index, lexeme text)`),
    /// kept for SPPF leaves; rollback truncates in step with the chart.
    fed: Vec<(u32, String)>,
    /// Per-phase latency histograms, present iff observability is enabled.
    obs: Option<Box<PhaseStats>>,
}

impl EarleyBackend {
    fn kind_to_token(&self, kind: &str) -> Result<u32, BackendError> {
        self.parser.cfg().terminal_index(kind).ok_or_else(|| {
            BackendError::unknown_kind(
                "earley",
                format!("token {} has kind {kind:?} outside the grammar", self.tokens_fed()),
            )
        })
    }
}

impl Recognizer for EarleyBackend {
    fn prepare(cfg: &Cfg) -> EarleyBackend {
        EarleyBackend {
            parser: EarleyParser::new(cfg),
            runs: 0,
            last: EarleyStats::default(),
            chart: None,
            guard: SessionGuard::closed(),
            fed: Vec::new(),
            obs: None,
        }
    }

    fn name(&self) -> &'static str {
        "earley"
    }

    fn begin(&mut self) -> Result<(), BackendError> {
        self.runs += 1;
        self.guard = SessionGuard::open();
        self.chart = Some(self.parser.begin());
        self.fed.clear();
        Ok(())
    }

    fn feed(&mut self, kind: &str, text: &str) -> Result<bool, BackendError> {
        let tok = self.kind_to_token(kind)?;
        let Some(chart) = self.chart.as_mut() else {
            return Err(BackendError::no_session("earley"));
        };
        self.guard.on_feed();
        self.fed.push((tok, text.to_string()));
        let span = obs_start(&self.obs);
        let viable = self.parser.feed(chart, tok);
        obs_end(&mut self.obs, Phase::Derive, span);
        Ok(viable)
    }

    fn tokens_fed(&self) -> usize {
        self.chart.as_ref().map_or(0, EarleyChart::tokens_fed)
    }

    fn is_viable(&self) -> bool {
        self.chart.as_ref().is_none_or(|c| !c.is_dead())
    }

    fn prefix_is_sentence(&mut self) -> Result<bool, BackendError> {
        let Some(chart) = self.chart.as_ref() else {
            return Err(BackendError::no_session("earley"));
        };
        Ok(self.parser.accepted(chart))
    }

    fn checkpoint(&mut self) -> Result<Checkpoint, BackendError> {
        let Some(chart) = self.chart.as_ref() else {
            return Err(BackendError::no_session("earley"));
        };
        Ok(self.guard.stamp(CheckpointState::Earley(chart.checkpoint())))
    }

    fn rollback(&mut self, cp: &Checkpoint) -> Result<(), BackendError> {
        let Some(chart) = self.chart.as_mut() else {
            return Err(BackendError::no_session("earley"));
        };
        let CheckpointState::Earley(inner) = &cp.state else {
            return Err(BackendError::stale_checkpoint("earley"));
        };
        self.guard.admit(cp, "earley")?;
        chart.rollback(inner);
        self.fed.truncate(cp.tokens);
        self.guard.on_rollback(cp.tokens);
        Ok(())
    }

    fn end(&mut self) -> Result<bool, BackendError> {
        let Some(chart) = self.chart.take() else {
            return Err(BackendError::no_session("earley"));
        };
        self.guard = SessionGuard::closed();
        self.last = chart.stats();
        Ok(self.parser.accepted(&chart))
    }

    fn reset(&mut self) {
        // Stateless between runs: the chart is rebuilt per session.
        self.chart = None;
        self.guard = SessionGuard::closed();
        self.fed.clear();
    }

    fn set_obs(&mut self, enabled: bool) {
        obs_install(&mut self.obs, enabled);
    }

    fn expected_kinds(&mut self) -> Vec<String> {
        // The chart frontier carries the expected set directly: every item
        // with a terminal after its dot. Exact — a scan of a reported
        // terminal always yields a non-empty next set.
        let Some(chart) = self.chart.as_ref() else {
            return Vec::new();
        };
        if chart.is_dead() {
            return Vec::new();
        }
        let mut names: Vec<String> = self
            .parser
            .expected_terminals(chart)
            .into_iter()
            .map(|t| self.parser.cfg().terminal_name(t).to_string())
            .collect();
        names.sort();
        names
    }

    fn record_recover_span(&mut self, nanos: u64) {
        if let Some(stats) = self.obs.as_deref_mut() {
            stats.record(Phase::Recover, nanos);
        }
    }

    fn metrics(&self) -> BackendMetrics {
        let stats;
        let s = match &self.chart {
            Some(c) => {
                stats = c.stats();
                &stats
            }
            None => &self.last,
        };
        BackendMetrics {
            runs: self.runs,
            work: s.total_items as u64,
            live_state: s.set_sizes.iter().copied().max().unwrap_or(0) as u64,
            phases: self.obs.clone(),
            ..BackendMetrics::default()
        }
    }
}

impl Parser for EarleyBackend {
    fn fork(&self) -> Box<dyn Parser> {
        Box::new(EarleyBackend {
            parser: self.parser.clone(),
            runs: 0,
            last: EarleyStats::default(),
            chart: None,
            guard: SessionGuard::closed(),
            fed: Vec::new(),
            obs: None,
        })
    }

    fn end_forest(&mut self) -> Result<ParseForest, BackendError> {
        let Some(chart) = self.chart.take() else {
            return Err(BackendError::no_session("earley"));
        };
        self.guard = SessionGuard::closed();
        self.last = chart.stats();
        // The completed chart *is* the derivation-fact set; the shared
        // builder turns it into the canonical packed forest.
        let span = obs_start(&self.obs);
        let spans = self.parser.production_spans(&chart);
        let tokens: Vec<u32> = self.fed.iter().map(|(t, _)| *t).collect();
        let texts: Vec<&str> = self.fed.iter().map(|(_, x)| x.as_str()).collect();
        let forest = build_sppf(self.parser.cfg(), &tokens, &texts, &spans);
        obs_end(&mut self.obs, Phase::Forest, span);
        self.fed.clear();
        Ok(forest)
    }
}

// ---------------------------------------------------------------------
// GLR
// ---------------------------------------------------------------------

/// The GLR baseline behind the uniform API: the incremental GSS is the
/// session, a checkpoint snapshots the stack frontier.
pub struct GlrBackend {
    parser: GlrParser,
    runs: u64,
    last: GlrStats,
    session: Option<crate::glr::GlrSession>,
    guard: SessionGuard,
    /// Tokens fed to the open session (`(terminal index, lexeme text)`),
    /// kept for SPPF leaves; rollback truncates in step with the GSS.
    fed: Vec<(u32, String)>,
    /// Per-phase latency histograms, present iff observability is enabled.
    obs: Option<Box<PhaseStats>>,
}

impl GlrBackend {
    fn kind_to_token(&self, kind: &str) -> Result<u32, BackendError> {
        self.parser.terminal_index(kind).ok_or_else(|| {
            BackendError::unknown_kind(
                "glr",
                format!("token {} has kind {kind:?} outside the grammar", self.tokens_fed()),
            )
        })
    }
}

impl Recognizer for GlrBackend {
    fn prepare(cfg: &Cfg) -> GlrBackend {
        GlrBackend {
            parser: GlrParser::new(cfg),
            runs: 0,
            last: GlrStats::default(),
            session: None,
            guard: SessionGuard::closed(),
            fed: Vec::new(),
            obs: None,
        }
    }

    fn name(&self) -> &'static str {
        "glr"
    }

    fn begin(&mut self) -> Result<(), BackendError> {
        self.runs += 1;
        self.guard = SessionGuard::open();
        self.session = Some(self.parser.begin());
        self.fed.clear();
        Ok(())
    }

    fn feed(&mut self, kind: &str, text: &str) -> Result<bool, BackendError> {
        // Viability only — the sentence probe (a full EOF-lookahead reduce
        // phase on a frontier snapshot) runs in `prefix_is_sentence`, on
        // demand, so batch feeding never pays for it.
        let tok = self.kind_to_token(kind)?;
        let Some(session) = self.session.as_mut() else {
            return Err(BackendError::no_session("glr"));
        };
        self.guard.on_feed();
        self.fed.push((tok, text.to_string()));
        let span = obs_start(&self.obs);
        let viable = self.parser.feed(session, tok);
        obs_end(&mut self.obs, Phase::Derive, span);
        Ok(viable)
    }

    fn tokens_fed(&self) -> usize {
        self.session.as_ref().map_or(0, crate::glr::GlrSession::tokens_fed)
    }

    fn is_viable(&self) -> bool {
        self.session.as_ref().is_none_or(|s| !s.is_dead())
    }

    fn prefix_is_sentence(&mut self) -> Result<bool, BackendError> {
        let Some(session) = self.session.as_mut() else {
            return Err(BackendError::no_session("glr"));
        };
        Ok(self.parser.accepted(session))
    }

    fn checkpoint(&mut self) -> Result<Checkpoint, BackendError> {
        let Some(session) = self.session.as_ref() else {
            return Err(BackendError::no_session("glr"));
        };
        Ok(self.guard.stamp(CheckpointState::Glr(session.checkpoint())))
    }

    fn rollback(&mut self, cp: &Checkpoint) -> Result<(), BackendError> {
        let Some(session) = self.session.as_mut() else {
            return Err(BackendError::no_session("glr"));
        };
        let CheckpointState::Glr(inner) = &cp.state else {
            return Err(BackendError::stale_checkpoint("glr"));
        };
        self.guard.admit(cp, "glr")?;
        session.rollback(inner);
        self.fed.truncate(cp.tokens);
        self.guard.on_rollback(cp.tokens);
        Ok(())
    }

    fn end(&mut self) -> Result<bool, BackendError> {
        let Some(mut session) = self.session.take() else {
            return Err(BackendError::no_session("glr"));
        };
        self.guard = SessionGuard::closed();
        let accepted = self.parser.accepted(&mut session);
        self.last = session.stats();
        Ok(accepted)
    }

    fn reset(&mut self) {
        // Stateless between runs: the GSS is rebuilt per session.
        self.session = None;
        self.guard = SessionGuard::closed();
        self.fed.clear();
    }

    fn set_obs(&mut self, enabled: bool) {
        obs_install(&mut self.obs, enabled);
    }

    fn expected_kinds(&mut self) -> Vec<String> {
        // The SLR action table over the GSS frontier gives a cheap
        // superset (a reduce chain may strand every stack); filter it down
        // to the terminals that actually shift by trial-feeding the raw
        // session — below the api-level checkpoint guard, so user
        // checkpoints are unaffected.
        let Some(session) = self.session.as_mut() else {
            return Vec::new();
        };
        if session.is_dead() {
            return Vec::new();
        }
        let candidates = self.parser.expected_terminals(session);
        let mut names = Vec::new();
        for t in candidates {
            let cp = session.checkpoint();
            if self.parser.feed(session, t) {
                names.push(self.parser.cfg().terminal_name(t).to_string());
            }
            session.rollback(&cp);
        }
        names.sort();
        names
    }

    fn record_recover_span(&mut self, nanos: u64) {
        if let Some(stats) = self.obs.as_deref_mut() {
            stats.record(Phase::Recover, nanos);
        }
    }

    fn metrics(&self) -> BackendMetrics {
        let stats;
        let s = match &self.session {
            Some(sess) => {
                stats = sess.stats();
                &stats
            }
            None => &self.last,
        };
        BackendMetrics {
            runs: self.runs,
            work: s.gss_nodes as u64,
            live_state: s.gss_edges as u64,
            phases: self.obs.clone(),
            ..BackendMetrics::default()
        }
    }
}

impl Parser for GlrBackend {
    fn fork(&self) -> Box<dyn Parser> {
        Box::new(GlrBackend {
            parser: self.parser.clone(),
            runs: 0,
            last: GlrStats::default(),
            session: None,
            guard: SessionGuard::closed(),
            fed: Vec::new(),
            obs: None,
        })
    }

    fn end_forest(&mut self) -> Result<ParseForest, BackendError> {
        let Some(mut session) = self.session.take() else {
            return Err(BackendError::no_session("glr"));
        };
        self.guard = SessionGuard::closed();
        // The GSS's recorded reductions (plus the EOF-probe completions)
        // are the derivation facts; the shared builder packs them.
        let span = obs_start(&self.obs);
        let spans = self.parser.session_spans(&mut session);
        self.last = session.stats();
        let tokens: Vec<u32> = self.fed.iter().map(|(t, _)| *t).collect();
        let texts: Vec<&str> = self.fed.iter().map(|(_, x)| x.as_str()).collect();
        let forest = build_sppf(self.parser.cfg(), &tokens, &texts, &spans);
        obs_end(&mut self.obs, Phase::Forest, span);
        self.fed.clear();
        Ok(forest)
    }
}

// ---------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------

/// The stable names accepted by [`backend_by_name`], in roster order.
pub const BACKEND_NAMES: &[&str] = &["pwd-improved", "pwd-original", "earley", "glr"];

/// Prepares one backend by its stable name (`"pwd"` is accepted as an alias
/// for `"pwd-improved"`), or `None` for an unknown name.
///
/// This is the selector services and CLIs use to host any parser family —
/// PWD or the Earley/GLR baselines — behind one `dyn` [`Parser`] without
/// compiling the whole roster.
pub fn backend_by_name(name: &str, cfg: &Cfg) -> Option<Box<dyn Parser>> {
    match name {
        "pwd" | "pwd-improved" => Some(Box::new(PwdBackend::improved(cfg))),
        "pwd-original" => Some(Box::new(PwdBackend::original_2011(cfg))),
        // Recognition-only: table-walk recognize loop, no forests. Not in
        // BACKEND_NAMES because the roster drives forest comparisons.
        "pwd-dfa" => Some(Box::new(PwdBackend::dfa(cfg))),
        "earley" => Some(Box::new(EarleyBackend::prepare(cfg))),
        "glr" => Some(Box::new(GlrBackend::prepare(cfg))),
        _ => None,
    }
}

/// Prepares the standard backend roster for a grammar: improved PWD,
/// original-2011 PWD, Earley, and GLR — the four parsers of the paper's
/// Figure 6 — behind `dyn` [`Parser`].
pub fn backends(cfg: &Cfg) -> Vec<Box<dyn Parser>> {
    BACKEND_NAMES
        .iter()
        .map(|name| backend_by_name(name, cfg).expect("roster names are always valid"))
        .collect()
}

// The whole point of the `Send + Sync` supertrait: compiled backends (and
// boxed trait objects of them, sessions over them, and saved checkpoints)
// can cross threads. Checked at compile time so a regression fails the
// build.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PwdBackend>();
    assert_send_sync::<EarleyBackend>();
    assert_send_sync::<GlrBackend>();
    assert_send_sync::<Box<dyn Parser>>();
    assert_send_sync::<Compiled>();
    assert_send_sync::<Checkpoint>();
    assert_send_sync::<Session<'static>>();
    assert_send_sync::<SpliceOutcome>();
};

/// Runs one input through every backend and asserts they agree — the shared
/// driver of the differential tests.
///
/// Returns the unanimous verdict.
///
/// # Panics
///
/// Panics (with both backend names and the input) if any backend errors or
/// two backends disagree.
pub fn unanimous(backends: &mut [Box<dyn Parser>], kinds: &[&str], label: &str) -> bool {
    let mut verdicts: Vec<(&'static str, bool)> = Vec::with_capacity(backends.len());
    for b in backends.iter_mut() {
        let ans = b
            .recognize(kinds)
            .unwrap_or_else(|e| panic!("{label}: backend failed on {kinds:?}: {e}"));
        verdicts.push((b.name(), ans));
    }
    let (first_name, first) = verdicts[0];
    for &(name, ans) in &verdicts[1..] {
        assert_eq!(first, ans, "{label}: {first_name} and {name} disagree on {kinds:?}");
    }
    first
}

/// Runs one input through every backend's [`Parser::parse_forest`] and
/// asserts the **forests** agree — the forest-native differential driver.
///
/// Tree counts must match exactly on every backend (including
/// [`ParseCount::Overflow`] and [`ParseCount::Infinite`]); for
/// non-`Infinite` counts the canonical fingerprints must match too
/// (infinitely ambiguous forests are cyclic, where the fingerprint is
/// knot-placement-sensitive, so agreement is asserted on the count alone).
/// This verifies *all* derivations coincide, even when the tree set is far
/// too large to enumerate — the comparison is cubic-sized-graph equality,
/// never tree-set equality.
///
/// Returns the unanimous summary.
///
/// # Panics
///
/// Panics (with backend names and the input) if any backend errors or two
/// backends disagree.
pub fn unanimous_forests(
    backends: &mut [Box<dyn Parser>],
    kinds: &[&str],
    label: &str,
) -> ForestSummary {
    let mut results: Vec<(&'static str, ForestSummary)> = Vec::with_capacity(backends.len());
    for b in backends.iter_mut() {
        let forest = b
            .parse_forest(kinds)
            .unwrap_or_else(|e| panic!("{label}: backend failed on {kinds:?}: {e}"));
        results.push((b.name(), forest.summary()));
    }
    let (first_name, first) = results[0];
    for &(name, summary) in &results[1..] {
        assert_eq!(
            first.count, summary.count,
            "{label}: {first_name} and {name} disagree on the tree count of {kinds:?}"
        );
        if first.count != ParseCount::Infinite {
            assert_eq!(
                first.fingerprint, summary.fingerprint,
                "{label}: {first_name} and {name} build different forests for {kinds:?} \
                 (counts agree at {:?} but the canonical graphs differ)",
                first.count
            );
        }
    }
    first
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::CfgBuilder;

    fn catalan() -> Cfg {
        let mut g = CfgBuilder::new("S");
        g.terminal("a");
        g.rule("S", &["S", "S"]);
        g.rule("S", &["a"]);
        g.build().expect("valid grammar")
    }

    fn matched_pairs() -> Cfg {
        let mut g = CfgBuilder::new("S");
        g.terminals(&["a", "b"]);
        g.rule("S", &["a", "S", "b"]);
        g.rule("S", &["a", "b"]);
        g.build().expect("valid grammar")
    }

    #[test]
    fn all_backends_share_one_lifecycle() {
        let cfg = catalan();
        for backend in &mut backends(&cfg) {
            assert!(!backend.recognize(&[]).unwrap(), "{}", backend.name());
            assert!(backend.recognize(&["a", "a"]).unwrap(), "{}", backend.name());
            backend.reset();
            assert!(backend.recognize(&["a"]).unwrap(), "{}", backend.name());
            let m = backend.metrics();
            assert_eq!(m.runs, 3, "{}", backend.name());
            assert!(m.work > 0, "{}", backend.name());
        }
    }

    #[test]
    fn runs_are_independent_without_explicit_reset() {
        let cfg = catalan();
        for backend in &mut backends(&cfg) {
            // Same verdicts in any order, no resets in between.
            assert!(backend.recognize(&["a", "a", "a"]).unwrap(), "{}", backend.name());
            assert!(!backend.recognize(&[]).unwrap(), "{}", backend.name());
            assert!(backend.recognize(&["a", "a", "a"]).unwrap(), "{}", backend.name());
        }
    }

    #[test]
    fn parse_counts_on_every_backend() {
        let cfg = catalan();
        for backend in &mut backends(&cfg) {
            let name = backend.name();
            // 4 leaves => Catalan number C3 = 5 trees.
            assert_eq!(
                backend.parse_count(&["a", "a", "a", "a"]).unwrap(),
                ParseCount::Finite(5),
                "{name}"
            );
            assert_eq!(backend.parse_count(&[]).unwrap(), ParseCount::Finite(0), "{name}");
        }
    }

    #[test]
    fn forests_agree_across_backends() {
        let cfg = catalan();
        let mut bs = backends(&cfg);
        // n = 10 leaves => C9 = 4862 trees, far beyond the default
        // enumeration cap of 64 — only forest-level comparison can check it.
        let summary = unanimous_forests(&mut bs, &["a"; 10], "catalan-forests");
        assert_eq!(summary.count, ParseCount::Finite(4862));
        assert!(
            summary.count.as_finite().unwrap() > EnumLimits::default().max_trees as u128,
            "the agreement must cover counts past the enumeration cap"
        );
        // Small input: cross-check the actual enumerated tree sets too.
        let mut tree_sets: Vec<Vec<String>> = Vec::new();
        for b in &mut bs {
            let mut ts: Vec<String> = b
                .parse_trees(&["a", "a", "a"], EnumLimits::default())
                .unwrap()
                .iter()
                .map(|t| t.to_string())
                .collect();
            ts.sort();
            tree_sets.push(ts);
        }
        assert!(tree_sets.windows(2).all(|w| w[0] == w[1]), "{tree_sets:?}");
        assert_eq!(tree_sets[0].len(), 2, "C2 = 2 trees over aaa");
    }

    #[test]
    fn streaming_finish_forest_matches_batch() {
        let cfg = catalan();
        for backend in &mut backends(&cfg) {
            let name = backend.name();
            let batch = backend.parse_forest(&["a", "a", "a", "a"]).unwrap();
            let mut s = Session::open(&mut **backend).unwrap();
            s.feed_all(&["a", "a"]).unwrap();
            let cp = s.checkpoint().unwrap();
            s.feed_all(&["a", "a", "a"]).unwrap(); // speculate…
            s.rollback(&cp).unwrap(); // …and retract
            s.feed_all(&["a", "a"]).unwrap();
            let streamed = s.finish_forest().unwrap();
            assert_eq!(streamed.summary(), batch.summary(), "{name}");
            assert_eq!(streamed.count(), ParseCount::Finite(5), "{name}: C3");
        }
    }

    #[test]
    fn unknown_kind_is_an_error_not_a_rejection() {
        let cfg = catalan();
        for backend in &mut backends(&cfg) {
            let err = backend.recognize(&["a", "WAT"]).unwrap_err();
            assert!(err.message.contains("WAT"), "{}: {err}", backend.name());
        }
    }

    #[test]
    fn unanimous_driver_agrees_on_corpus() {
        let cfg = catalan();
        let mut bs = backends(&cfg);
        assert!(unanimous(&mut bs, &["a", "a"], "catalan"));
        assert!(!unanimous(&mut bs, &[], "catalan"));
    }

    #[test]
    fn every_backend_streams_with_checkpoint_rollback() {
        let cfg = matched_pairs();
        for backend in &mut backends(&cfg) {
            let name = backend.name();
            let mut s = Session::open(&mut **backend).unwrap();
            assert_eq!(s.tokens_fed(), 0, "{name}");
            s.feed_all(&["a", "a"]).unwrap();
            let cp = s.checkpoint().unwrap();
            assert_eq!(cp.tokens_fed(), 2, "{name}");
            // Speculate into a dead end and retract.
            let out = s.feed_all(&["b", "b", "b"]).unwrap();
            assert_eq!(out, FeedOutcome::Dead, "{name}: aabbb has no continuation");
            assert!(!s.is_viable(), "{name}");
            s.rollback(&cp).unwrap();
            assert!(s.is_viable(), "{name}");
            assert_eq!(s.tokens_fed(), 2, "{name}");
            // Resume down the real input.
            let out = s.feed_all(&["b", "b"]).unwrap();
            assert_eq!(out, FeedOutcome::Viable { prefix_is_sentence: true }, "{name}");
            assert!(s.finish().unwrap(), "{name}: aabb after rollback");
            // The backend is reusable for batch runs afterwards.
            assert!(backend.recognize(&["a", "b"]).unwrap(), "{name}");
        }
    }

    #[test]
    fn streaming_prefix_verdicts_match_batch_for_every_backend() {
        let cfg = matched_pairs();
        let input = ["a", "a", "a", "b", "b", "b"];
        for backend in &mut backends(&cfg) {
            let name = backend.name();
            // Batch verdicts for every prefix, first.
            let expect: Vec<bool> =
                (0..=input.len()).map(|i| backend.recognize(&input[..i]).unwrap()).collect();
            let mut s = Session::open(&mut **backend).unwrap();
            assert_eq!(s.prefix_is_sentence().unwrap(), expect[0], "{name} ε");
            for (i, k) in input.iter().enumerate() {
                s.feed_kind(k).unwrap();
                assert_eq!(s.prefix_is_sentence().unwrap(), expect[i + 1], "{name} prefix {i}");
            }
        }
    }

    #[test]
    fn fused_source_recognition_has_no_intermediate_vector() {
        // Drive a streaming lexer source straight into each backend.
        let mut g = CfgBuilder::new("S");
        g.terminals(&["NUM", "PLUS"]);
        g.rule("S", &["NUM"]);
        g.rule("S", &["S", "PLUS", "NUM"]);
        let cfg = g.build().unwrap();
        let lexer = crate::lex::LexerBuilder::new()
            .rule("NUM", "[0-9]+")
            .unwrap()
            .rule("PLUS", "\\+")
            .unwrap()
            .skip("WS", " +")
            .unwrap()
            .build();
        for backend in &mut backends(&cfg) {
            let name = backend.name();
            let mut src = lexer.source("1 + 22 + 333");
            assert!(backend.recognize_source(&mut src).unwrap(), "{name}");
            let mut src = lexer.source("1 + + 2");
            assert!(!backend.recognize_source(&mut src).unwrap(), "{name}");
            let mut src = lexer.source("1 + §");
            let err = backend.recognize_source(&mut src).unwrap_err();
            assert!(err.message.contains("no token matches"), "{name}: {err}");
        }
    }

    #[test]
    fn stale_checkpoints_are_rejected() {
        let cfg = catalan();
        let mut backend = PwdBackend::improved(&cfg);
        let cp = {
            let mut s = Session::open(&mut backend).unwrap();
            s.feed_kind("a").unwrap();
            let cp = s.checkpoint().unwrap();
            s.finish().unwrap();
            cp
        };
        // A new session must not accept the old session's checkpoint: the
        // epoch reset discarded its derivative.
        let mut s = Session::open(&mut backend).unwrap();
        let err = s.rollback(&cp).unwrap_err();
        assert!(err.message.contains("checkpoint"), "{err}");
        // Nor may a checkpoint cross backends.
        let mut earley = EarleyBackend::prepare(&cfg);
        let mut s2 = Session::open(&mut earley).unwrap();
        assert!(s2.rollback(&cp).is_err());
        // Nor restore a position the session has rolled back past.
        let mut glr = GlrBackend::prepare(&cfg);
        let mut s3 = Session::open(&mut glr).unwrap();
        s3.feed_kind("a").unwrap();
        let early = s3.checkpoint().unwrap();
        s3.feed_kind("a").unwrap();
        let late = s3.checkpoint().unwrap();
        s3.rollback(&early).unwrap();
        assert!(s3.rollback(&late).is_err(), "forward restore must be rejected");
    }

    #[test]
    fn rollback_invalidates_later_checkpoints_even_after_refeed() {
        // The timeline guard: after rolling back past a checkpoint's
        // position, re-feeding up to (or beyond) that position must NOT
        // resurrect it — the chart/GSS rebuilt there describes different
        // tokens. Checkpoints at or before the rollback target stay
        // restorable, repeatedly.
        let cfg = matched_pairs();
        for backend in &mut backends(&cfg) {
            let name = backend.name();
            let mut s = Session::open(&mut **backend).unwrap();
            s.feed_kind("a").unwrap();
            let cp1 = s.checkpoint().unwrap();
            s.feed_kind("a").unwrap();
            let cp2 = s.checkpoint().unwrap();
            s.rollback(&cp1).unwrap();
            s.feed_kind("b").unwrap(); // position 2 exists again, differently
            assert!(s.rollback(&cp2).is_err(), "{name}: divergent re-feed must invalidate cp2");
            s.rollback(&cp1).unwrap();
            s.rollback(&cp1).unwrap(); // same checkpoint, restorable again
            s.feed_kind("b").unwrap();
            assert!(s.finish().unwrap(), "{name}: ab after the excursions");
        }
    }

    #[test]
    fn checkpoints_do_not_cross_backend_instances() {
        // Session ids are process-unique, so two instances opened in
        // lock-step (same generation count) still reject each other's
        // checkpoints.
        let cfg = catalan();
        let mut a = PwdBackend::improved(&cfg);
        let mut b = a.fork();
        a.begin().unwrap();
        b.begin().unwrap();
        a.feed("a", "a").unwrap();
        b.feed("a", "a").unwrap();
        let cp = a.checkpoint().unwrap();
        assert!(b.rollback(&cp).is_err(), "foreign checkpoint must be rejected");
        a.rollback(&cp).unwrap();
        assert!(a.end().unwrap());
        let _ = b.end().unwrap();
    }

    #[test]
    fn budget_exhaustion_is_not_recoverable_by_rollback() {
        let cfg = catalan();
        let config = ParserConfig { max_nodes: Some(60), ..ParserConfig::improved() };
        let mut backend = PwdBackend::with_config(&cfg, config, "pwd-budget");
        backend.begin().unwrap();
        let cp = backend.checkpoint().unwrap();
        let mut tripped = false;
        for _ in 0..500 {
            match backend.feed("a", "a") {
                Ok(_) => {}
                Err(e) => {
                    assert!(e.message.contains("budget"), "{e}");
                    tripped = true;
                    break;
                }
            }
        }
        assert!(tripped, "the node budget must trip on this input");
        // The arena is full: rolling back cannot resume the session, and
        // saying so beats letting callers retry forever.
        let err = backend.rollback(&cp).unwrap_err();
        assert!(err.message.contains("cannot be resumed"), "{err}");
        // A reset clears the budget; the backend itself is fine.
        backend.reset();
        assert!(backend.recognize(&["a"]).unwrap());
    }

    #[test]
    fn owned_sessions_release_their_backend() {
        let cfg = catalan();
        let backend = backend_by_name("pwd", &cfg).unwrap();
        let mut s = Session::owned(backend).unwrap();
        s.feed_all(&["a", "a"]).unwrap();
        let (verdict, released) = s.finish_and_release();
        assert!(verdict.unwrap());
        let mut backend = released.expect("owned session returns its backend");
        assert!(backend.recognize(&["a"]).unwrap(), "released backend is reusable");
    }

    #[test]
    fn feeding_without_a_session_is_an_error() {
        let cfg = catalan();
        for backend in &mut backends(&cfg) {
            let err = backend.feed("a", "a").unwrap_err();
            assert!(err.message.contains("no open session"), "{}: {err}", backend.name());
            assert!(backend.end().is_err(), "{}", backend.name());
        }
    }

    #[test]
    fn splice_matches_scratch_on_every_backend() {
        let cfg = matched_pairs();
        let mut roster: Vec<Box<dyn Parser>> = backends(&cfg);
        roster.push(backend_by_name("pwd-dfa", &cfg).unwrap());
        for backend in &mut roster {
            let name = backend.name();
            let mut scratch = backend.fork();
            let mut s = Session::open(&mut **backend).unwrap();
            s.enable_incremental().unwrap();
            let mut model: Vec<&str> = vec!["a", "a", "a", "b", "b", "b"];
            s.feed_all(&model).unwrap();
            let edits: [(usize, usize, &[&str]); 4] =
                [(1, 1, &[]), (0, 0, &["a"]), (3, 0, &["a", "b"]), (2, 2, &["b"])];
            for (at, remove, insert) in edits {
                let pairs: Vec<(&str, &str)> = insert.iter().map(|k| (*k, *k)).collect();
                let out = s.splice_tokens(at, remove, &pairs).unwrap();
                model.splice(at..at + remove, insert.iter().copied());
                assert_eq!(out.refed + out.reused, model.len(), "{name}: {out:?}");
                assert_eq!(s.tokens_fed(), model.len(), "{name}");
                assert_eq!(
                    s.prefix_is_sentence().unwrap(),
                    scratch.recognize(&model).unwrap(),
                    "{name}: spliced verdict diverged from scratch on {model:?}"
                );
            }
        }
    }

    #[test]
    fn convergence_jump_skips_the_suffix() {
        // Both recognize-mode PWD arms: the lazy automaton (exact interned
        // state ids) and the interpreted engine (graph digests).
        let cfg = catalan();
        let interp = ParserConfig {
            mode: ParseMode::Recognize,
            automaton: crate::core::AutomatonMode::Off,
            ..ParserConfig::improved()
        };
        let mut arms: Vec<Box<dyn Parser>> = vec![
            Box::new(PwdBackend::dfa(&cfg)),
            Box::new(PwdBackend::with_config(&cfg, interp, "pwd-recognize-interp")),
        ];
        for backend in &mut arms {
            let name = backend.name();
            let mut s = Session::open(&mut **backend).unwrap();
            s.enable_incremental().unwrap();
            s.feed_all(&["a"; 400]).unwrap();
            // Replace one mid-buffer token with one of the same class: the
            // post-edit state matches the memoized pre-edit state at the
            // first aligned position, so the splice jumps to the saved end
            // state instead of refeeding the 199-token suffix.
            let out = s.splice_tokens(200, 1, &[("a", "a")]).unwrap();
            assert!(out.converged_at.is_some(), "{name}: {out:?}");
            assert!(out.refed <= 2, "{name}: expected an immediate jump, got {out:?}");
            assert!(out.reused >= 398, "{name}: {out:?}");
            assert_eq!(s.tokens_fed(), 400, "{name}");
            assert!(s.finish().unwrap(), "{name}");
        }
    }

    #[test]
    fn splice_follows_rollback_timeline_semantics() {
        let cfg = matched_pairs();
        for backend in &mut backends(&cfg) {
            let name = backend.name();
            let mut s = Session::open(&mut **backend).unwrap();
            s.enable_incremental().unwrap();
            s.feed_kind("a").unwrap();
            let below = s.checkpoint().unwrap(); // position 1
            s.feed_all(&["a", "a", "b", "b"]).unwrap();
            let above = s.checkpoint().unwrap(); // position 5
            s.feed_kind("b").unwrap();
            // Damage at position 4: the rung restore rolls back past
            // `above`, which must invalidate it — same timeline semantics
            // as an explicit rollback.
            let out = s.splice_tokens(4, 1, &[("b", "b")]).unwrap();
            assert!(out.rung <= 4, "{name}: {out:?}");
            assert_eq!(s.tokens_fed(), 6, "{name}");
            assert!(s.prefix_is_sentence().unwrap(), "{name}: aaabbb");
            assert!(
                s.rollback(&above).is_err(),
                "{name}: a checkpoint above the splice damage must be invalidated"
            );
            s.rollback(&below).unwrap();
            assert_eq!(s.tokens_fed(), 1, "{name}");
            s.feed_kind("b").unwrap();
            assert!(s.finish().unwrap(), "{name}: ab after the excursions");
        }
    }

    #[test]
    fn splice_preconditions_are_enforced() {
        let cfg = catalan();
        let mut backend = PwdBackend::improved(&cfg);
        {
            let mut s = Session::open(&mut backend).unwrap();
            let err = s.splice_tokens(0, 0, &[("a", "a")]).unwrap_err();
            assert!(err.message.contains("enable_incremental"), "{err}");
            s.feed_kind("a").unwrap();
            let err = s.enable_incremental().unwrap_err();
            assert!(err.message.contains("fresh"), "{err}");
        }
        {
            let mut s = Session::open(&mut backend).unwrap();
            s.enable_recovery(RecoveryBudget::default());
            let err = s.enable_incremental().unwrap_err();
            assert!(err.message.contains("mutually exclusive"), "{err}");
        }
        {
            let mut s = Session::open(&mut backend).unwrap();
            s.enable_incremental().unwrap();
            s.feed_kind("a").unwrap();
            let err = s.splice_tokens(1, 1, &[]).unwrap_err();
            assert!(err.message.contains("exceeds"), "{err}");
            s.enable_recovery(RecoveryBudget::default());
            assert!(!s.incremental_enabled(), "enabling recovery turns incremental off");
        }
    }

    #[test]
    fn text_splice_through_source_buffer() {
        let mut g = CfgBuilder::new("S");
        g.terminals(&["NUM", "PLUS"]);
        g.rule("S", &["NUM"]);
        g.rule("S", &["S", "PLUS", "NUM"]);
        let cfg = g.build().unwrap();
        let lexer = crate::lex::LexerBuilder::new()
            .rule("NUM", "[0-9]+")
            .unwrap()
            .rule("PLUS", "\\+")
            .unwrap()
            .skip("WS", " +")
            .unwrap()
            .build();
        let mut backend = PwdBackend::improved(&cfg);
        let mut buf = SourceBuffer::new(&lexer, "1 + 22 + 333").unwrap();
        let mut s = Session::open(&mut backend).unwrap();
        s.enable_incremental().unwrap();
        s.feed_lexemes(&buf.lexemes()).unwrap();
        // "22" -> "4 + 5": one NUM becomes NUM PLUS NUM.
        let out = s.splice(&mut buf, 4, 6, "4 + 5").unwrap();
        assert_eq!(buf.text(), "1 + 4 + 5 + 333");
        assert_eq!(s.tokens_fed(), 7);
        assert_eq!(out.refed + out.reused, 7, "{out:?}");
        assert!(s.prefix_is_sentence().unwrap());
        // Delete the " +" after the 5: two adjacent NUMs, which the
        // grammar rejects — the splice must carry the death through.
        let out = s.splice(&mut buf, 9, 11, "").unwrap();
        assert_eq!(buf.text(), "1 + 4 + 5 333");
        assert_eq!(out.outcome, FeedOutcome::Dead);
        let m = s.metrics();
        assert!(m.tokens_refed > 0, "{m:?}");
        assert!(m.tokens_reused > 0, "{m:?}");
    }
}
