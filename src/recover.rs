//! Bounded-budget error recovery and structured diagnostics over the
//! unified [`Parser`](crate::api::Parser) interface.
//!
//! Classic derivative parsing (and both baselines) answer a malformed
//! input with a single bit: the session goes dead. This module upgrades
//! that to the behavior users of real compilers expect — the parse
//! continues past the error, a spanned [`Diagnostic`] explains what was
//! wrong and what the parser did about it, and the caller still gets a
//! forest for the repaired input.
//!
//! # How recovery works
//!
//! Recovery is **derivative-based repair**: the session state after `k`
//! tokens is itself a language (`D_{t1…tk}(L)`), so "which repairs are
//! viable here?" is just "which candidate tokens have a non-empty
//! derivative from the current state?". When a feed dies, the driver
//! rolls back to the pre-feed checkpoint (a pointer restore) and probes
//! the candidate set reported by
//! [`Recognizer::expected_kinds`](crate::api::Recognizer::expected_kinds):
//!
//! * the PWD backend answers by trial-deriving a cloned session state
//!   w.r.t. every grammar terminal — reusing warm automaton rows and memo
//!   entries, and counting each probe in
//!   [`Metrics::recovery_probes`](crate::core::Metrics);
//! * the Earley backend reads the exact one-step expected set off its
//!   chart frontier (re-seeding the chart is then just feeding the
//!   repaired token);
//! * the GLR backend reports the terminals its GSS frontier can shift,
//!   pre-filtered by trial shifts on the raw session.
//!
//! Three repair shapes are scored per failure point:
//!
//! * **Substitute** the offending token with an expected one (the input
//!   had the right shape, wrong token);
//! * **Insert** an expected token before it (the input was missing one) —
//!   only viable when the offending token parses *after* the insertion;
//! * **Skip** the offending token (the input had an extra one). Skipping
//!   is always viable, so a run of skips is exactly classic panic-mode
//!   recovery: discard input until a synchronizing terminal parses again.
//!
//! Candidates are ranked by how many real input tokens (the offending one
//! plus up to [`RecoveryBudget::lookahead`] of lookahead) the repaired
//! state consumes viably, then by cost, then by a fixed kind order
//! (insert, substitute, skip — insertion keeps the real token in the
//! stream, so at a tie it is the likelier-correct account of the
//! damage), then by candidate name — fully deterministic.
//!
//! # The cost model
//!
//! Every applied repair charges its kind's cost
//! ([`RecoveryBudget::skip_cost`] / [`insert_cost`](RecoveryBudget::insert_cost)
//! / [`substitute_cost`](RecoveryBudget::substitute_cost)) against
//! [`RecoveryBudget::max_cost`], and the repair count is capped by
//! [`RecoveryBudget::max_repairs`]. Skips are deliberately the most
//! expensive: insertion and substitution keep the stream aligned, while
//! panic-mode skipping loses input and should only win when nothing
//! cheaper survives lookahead.
//!
//! Two density guards keep a locally-plausible repair from eating the
//! whole input: a per-kind anti-cascade cap (the same token kind may win
//! insert/substitute at most twice per 8-token window — a third win means
//! the repair is feeding on itself, as a substituted `(` does via
//! argument-list commas) and a flail detector (3 charged repairs inside a
//! 10-token window trips exhaustion early — dense repairs mean the engine
//! is patching noise, not errors).
//!
//! When a limit trips, recovery emits one [`Severity::Note`] diagnostic
//! and switches to **salvage mode**: each remaining token is fed if it
//! still fits and silently dropped otherwise, with contiguous dropped
//! regions coalesced into a single uncharged diagnostic. The parseable
//! suffix of a budget-starved input still reaches the forest, so a
//! starved parse is never worse than no recovery at all — and the
//! end-of-input completion search still runs, so a salvaged prefix is
//! still closed into a sentence when ≤ 3 insertions suffice.
//!
//! At end of input, an incomplete-but-viable prefix is completed by a
//! bounded depth-first search over insertions (≤ 3 tokens deep, within
//! the same budget) — the "unexpected end of input, inserted `)` `;`"
//! family of repairs.
//!
//! Engine resource errors ([`PwdError::NodeBudgetExceeded`] and friends)
//! are **never** recovered: they mean the arena is full, not that the
//! input is wrong, and they propagate as errors.
//!
//! [`PwdError::NodeBudgetExceeded`]: crate::core::PwdError
//!
//! # Examples
//!
//! ```
//! use derp::api::{PwdBackend, Session};
//! use derp::core::RecoveryBudget;
//! use derp::grammar::CfgBuilder;
//!
//! # fn main() -> Result<(), derp::api::BackendError> {
//! let mut g = CfgBuilder::new("S");
//! g.terminals(&["a", "b"]);
//! g.rule("S", &["a", "S", "b"]);
//! g.rule("S", &["a", "b"]);
//! let cfg = g.build().expect("valid grammar");
//! let mut backend = PwdBackend::improved(&cfg);
//!
//! let mut session = Session::open(&mut backend)?;
//! session.enable_recovery(RecoveryBudget::default());
//! // "a a b" is missing its closing "b" — recovery inserts it.
//! session.feed_all(&["a", "a", "b"])?;
//! let (accepted, diagnostics) = session.finish_with_diagnostics()?;
//! assert!(accepted, "repaired to a sentence");
//! assert_eq!(diagnostics.len(), 1);
//! assert!(diagnostics[0].message.contains("inserted"));
//! # Ok(())
//! # }
//! ```

use crate::api::{BackendError, Parser};
use crate::lex::{Position, SourceMap, Span};
use std::fmt;

pub use pwd_core::RecoveryBudget;

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The input was wrong and a repair (or a dead parse) resulted.
    Error,
    /// The input was suspicious but the parse proceeded unmodified.
    Warning,
    /// Bookkeeping the caller should see (e.g. the recovery budget ran
    /// out and remaining errors went unrepaired).
    Note,
}

impl Severity {
    /// The rustc-style label (`"error"` / `"warning"` / `"note"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The shape of one applied repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairKind {
    /// The offending input token was discarded (panic-mode step).
    Skip,
    /// The named token kind was synthesized before the offending token.
    Insert(String),
    /// The offending token was re-read as the named kind.
    Substitute(String),
}

impl fmt::Display for RepairKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairKind::Skip => write!(f, "skip"),
            RepairKind::Insert(k) => write!(f, "insert {k:?}"),
            RepairKind::Substitute(k) => write!(f, "substitute {k:?}"),
        }
    }
}

/// One repair applied by the recovery engine, with its charged cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repair {
    /// What was done.
    pub kind: RepairKind,
    /// What it charged against [`RecoveryBudget::max_cost`].
    pub cost: u32,
}

/// A structured, spanned account of one recovery event (or lex error, or
/// budget exhaustion) — the unit every layer above the engine reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Index of the offending token in the *input* stream (counting input
    /// tokens only — skipped tokens count, synthesized insertions don't).
    pub token_index: usize,
    /// Byte range of the offending token in the source, when the feed
    /// path knew it (lexeme and source feeds do; bare kind feeds don't).
    pub span: Option<Span>,
    /// Line/column of the span start, when the feed path had the source
    /// text in hand to compute it ([`render`](Diagnostic::render)
    /// recomputes from `span` regardless).
    pub position: Option<Position>,
    /// The offending token's kind, if there was one (`None` for
    /// end-of-input and budget-exhaustion diagnostics).
    pub found: Option<String>,
    /// The token kinds that were viable at the failure point, sorted.
    pub expected: Vec<String>,
    /// The repair that was applied, if any.
    pub repair: Option<Repair>,
    /// How serious this is.
    pub severity: Severity,
    /// Human-readable one-liner.
    pub message: String,
}

impl Diagnostic {
    /// Renders rustc-style: severity and message, then — when the
    /// diagnostic is spanned — the caret frame from
    /// [`SourceMap::render_span`], then the expected set as a help line.
    pub fn render(&self, src: &str) -> String {
        let mut out = format!("{}: {}", self.severity, self.message);
        if let Some(span) = self.span {
            out.push('\n');
            out.push_str(&SourceMap::new(src).render_span(span));
        }
        if !self.expected.is_empty() {
            let list =
                self.expected.iter().map(|k| format!("{k:?}")).collect::<Vec<_>>().join(", ");
            out.push_str(&format!("\n = help: expected one of: {list}"));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.severity, self.message)?;
        if let Some(p) = self.position {
            write!(f, " at {p}")?;
        } else if let Some(s) = self.span {
            write!(f, " at bytes {s}")?;
        }
        Ok(())
    }
}

/// Fills in [`Diagnostic::position`] from [`Diagnostic::span`] for every
/// spanned diagnostic, given the source text — for feed paths (lexeme
/// slices) that carry byte offsets but never see the full source.
pub fn attach_positions(diagnostics: &mut [Diagnostic], src: &str) {
    let map = SourceMap::new(src);
    for d in diagnostics {
        if let (None, Some(span)) = (d.position, d.span) {
            d.position = Some(map.position(span.start));
        }
    }
}

/// One input token as the recovery driver sees it, plus the source span
/// when the feed path knows it. Kind and text are [`Cow`]s: the batch
/// feed paths borrow straight from the caller's lexemes (recovery adds
/// zero allocations per clean token), while the streaming path — whose
/// scanned tokens die on the next `next_token` pull — buffers owned
/// copies.
///
/// [`Cow`]: std::borrow::Cow
#[derive(Debug, Clone)]
pub(crate) struct InputToken<'a> {
    pub(crate) kind: std::borrow::Cow<'a, str>,
    pub(crate) text: std::borrow::Cow<'a, str>,
    pub(crate) span: Option<Span>,
}

impl<'a> InputToken<'a> {
    pub(crate) fn new(kind: &'a str, text: &'a str, span: Option<Span>) -> InputToken<'a> {
        InputToken {
            kind: std::borrow::Cow::Borrowed(kind),
            text: std::borrow::Cow::Borrowed(text),
            span,
        }
    }

    /// An owning token for feed paths whose source strings don't outlive
    /// the pull loop.
    pub(crate) fn owned(kind: &str, text: &str, span: Option<Span>) -> InputToken<'static> {
        InputToken {
            kind: std::borrow::Cow::Owned(kind.to_string()),
            text: std::borrow::Cow::Owned(text.to_string()),
            span,
        }
    }
}

/// Per-session recovery ledger: the budget, what has been spent, and the
/// diagnostics accumulated so far.
#[derive(Debug)]
pub(crate) struct RecoveryState {
    pub(crate) budget: RecoveryBudget,
    repairs: u32,
    cost: u32,
    exhausted: bool,
    pub(crate) diagnostics: Vec<Diagnostic>,
    /// Input tokens seen so far (diagnostic `token_index` coordinates).
    pub(crate) next_index: usize,
    /// Byte offset just past the last spanned token seen — where an
    /// end-of-input diagnostic points its (zero-width) caret.
    last_end: Option<usize>,
    /// Recent insert/substitute winners `(token_index, kind)` — the
    /// anti-cascade memory (see [`CASCADE_KIND_CAP`]).
    recent_kinds: Vec<(usize, String)>,
    /// Token indices of all charged repairs — the flail detector's
    /// memory (see [`FLAIL_CAP`]).
    recent_repairs: Vec<usize>,
    /// Live salvage-drop run: `(last_dropped_index, run_length,
    /// diagnostics_slot)` — lets adjacent post-exhaustion drops coalesce
    /// into one region diagnostic instead of one per token.
    drop_run: Option<(usize, usize, usize)>,
}

impl RecoveryState {
    pub(crate) fn new(budget: RecoveryBudget) -> RecoveryState {
        RecoveryState {
            budget,
            repairs: 0,
            cost: 0,
            exhausted: false,
            diagnostics: Vec::new(),
            next_index: 0,
            last_end: None,
            recent_kinds: Vec::new(),
            recent_repairs: Vec::new(),
            drop_run: None,
        }
    }

    /// Have [`FLAIL_CAP`] repairs landed within the trailing
    /// [`FLAIL_WINDOW`] token indices? That density means local repair is
    /// flailing — mangling a region that has no local fix (a deleted
    /// declaration header, a scrambled statement) — and every further
    /// repair digs the structural hole deeper. The recovery gives up
    /// repairing and salvages instead, which keeps the end-of-input
    /// completion shallow enough to still close the parse.
    fn flailing(&self, index: usize) -> bool {
        self.recent_repairs.iter().filter(|i| index.saturating_sub(**i) <= FLAIL_WINDOW).count()
            >= FLAIL_CAP
    }

    /// Has `kind` already won [`CASCADE_KIND_CAP`] insert/substitute
    /// repairs within the trailing [`CASCADE_WINDOW`] token indices? Such
    /// a candidate is vetoed: a locally-optimal repair that keeps winning
    /// in a dense cluster is almost always digging a structural hole
    /// (e.g. `"("` in expression grammars swallows any continuation) that
    /// end-of-input completion can never refill.
    fn overused(&self, kind: &str, index: usize) -> bool {
        self.recent_kinds
            .iter()
            .filter(|(i, k)| index.saturating_sub(*i) <= CASCADE_WINDOW && k == kind)
            .count()
            >= CASCADE_KIND_CAP
    }

    /// Records an insert/substitute winner for the anti-cascade window.
    fn note_repair_kind(&mut self, index: usize, kind: &str) {
        self.recent_kinds.retain(|(i, _)| index.saturating_sub(*i) <= CASCADE_WINDOW);
        self.recent_kinds.push((index, kind.to_string()));
    }

    /// Records a token dropped during post-exhaustion salvage, coalescing
    /// adjacent drops into a single region diagnostic.
    fn note_dropped(&mut self, index: usize, tok: &InputToken<'_>) {
        if let Some((last, count, slot)) = self.drop_run {
            if index == last + 1 {
                let count = count + 1;
                let d = &mut self.diagnostics[slot];
                if let (Some(span), Some(ts)) = (d.span.as_mut(), tok.span) {
                    span.end = ts.end;
                }
                d.message =
                    format!("budget exhausted; dropped {count} tokens that no longer parse");
                self.drop_run = Some((index, count, slot));
                return;
            }
        }
        self.diagnostics.push(Diagnostic {
            token_index: index,
            span: tok.span,
            position: None,
            found: Some(tok.kind.to_string()),
            expected: Vec::new(),
            repair: Some(Repair { kind: RepairKind::Skip, cost: 0 }),
            severity: Severity::Error,
            message: format!("unexpected {:?} after budget exhaustion; dropped it", tok.kind),
        });
        self.drop_run = Some((index, 1, self.diagnostics.len() - 1));
    }

    /// Zero-width span at the end of the last spanned token — the anchor
    /// for end-of-input diagnostics (`None` when the input carried no
    /// spans, e.g. bare kind feeds).
    fn eof_span(&self) -> Option<Span> {
        self.last_end.map(|end| Span::new(end, end))
    }

    fn can_afford(&self, cost: u32) -> bool {
        !self.exhausted
            && self.repairs < self.budget.max_repairs
            && self.cost + cost <= self.budget.max_cost
    }

    fn charge(&mut self, cost: u32) {
        self.repairs += 1;
        self.cost += cost;
    }

    /// Records a lexer error as a diagnostic. The streaming lexer already
    /// resynchronizes past the offending bytes, so this is reporting, not
    /// repair — it charges nothing against the budget.
    pub(crate) fn note_lex_error(&mut self, e: &crate::lex::LexError) {
        self.diagnostics.push(Diagnostic {
            token_index: self.next_index,
            span: Some(e.span),
            position: Some(e.position),
            found: None,
            expected: Vec::new(),
            repair: Some(Repair { kind: RepairKind::Skip, cost: 0 }),
            severity: Severity::Error,
            message: e.to_string(),
        });
    }

    /// Marks the budget spent and records the one `note` diagnostic; a
    /// no-op when already exhausted.
    fn note_exhausted(&mut self, token_index: usize, span: Option<Span>) {
        if self.exhausted {
            return;
        }
        self.exhausted = true;
        self.diagnostics.push(Diagnostic {
            token_index,
            span,
            position: None,
            found: None,
            expected: Vec::new(),
            repair: None,
            severity: Severity::Note,
            message: format!(
                "recovery budget exhausted ({} repairs, cost {}); remaining errors are unrepaired",
                self.repairs, self.cost
            ),
        });
    }
}

/// Anti-cascade guard: the same insert/substitute kind may win at most
/// this many repairs within [`CASCADE_WINDOW`] token indices before it is
/// vetoed as a candidate. Sparse legitimate repairs (five independent
/// missing `";"` across a file) are untouched; dense repeat-wins are the
/// signature of a repair digging itself deeper.
const CASCADE_KIND_CAP: usize = 2;

/// Token-index width of the anti-cascade window.
const CASCADE_WINDOW: usize = 8;

/// Flail detector: this many charged repairs (of any kind) within
/// [`FLAIL_WINDOW`] token indices flips the session into salvage mode —
/// dense error clusters have no local fix, and repairing through them
/// only accumulates unfinishable structure.
const FLAIL_CAP: usize = 3;

/// Token-index width of the flail-detector window.
const FLAIL_WINDOW: usize = 10;

/// Minimum chargeable cost of any repair under this budget.
fn min_cost(b: &RecoveryBudget) -> u32 {
    b.skip_cost.min(b.insert_cost).min(b.substitute_cost)
}

/// A scored repair option at one failure point.
struct Option_ {
    kind: RepairKind,
    cost: u32,
    /// Real input tokens (the offending one + lookahead) consumed viably.
    progress: usize,
    /// Fixed tie-break order: insert < substitute < skip.
    rank: u8,
}

/// Feeds one real input token with recovery: the fast path is one
/// checkpoint plus the ordinary feed; on a dead (or unknown-kind) feed
/// the repair machinery engages. Returns session viability, like
/// [`Recognizer::feed`](crate::api::Recognizer::feed).
pub(crate) fn feed_recovering(
    backend: &mut dyn Parser,
    rs: &mut RecoveryState,
    tok: &InputToken<'_>,
    lookahead: &[InputToken<'_>],
) -> Result<bool, BackendError> {
    let index = rs.next_index;
    rs.next_index += 1;
    if let Some(span) = tok.span {
        rs.last_end = Some(span.end);
    }
    if rs.exhausted {
        // Salvage mode: the budget is spent, but dying on the first
        // unrepairable token would discard every parseable token after
        // it. Feed what still fits, drop what does not (coalesced into
        // one diagnostic per contiguous region, charged nothing) — one
        // checkpoint + rollback per dropped token, so still linear.
        return salvage_feed(backend, rs, index, tok);
    }
    if !backend.is_viable() {
        // Dead despite recovery (resource errors, callers feeding past a
        // fatal error): degrade to the recovery-off path — a dead feed
        // is cheap and stays dead.
        return backend.feed(&tok.kind, &tok.text);
    }
    let cp = backend.checkpoint()?;
    let unknown = match backend.feed(&tok.kind, &tok.text) {
        Ok(true) => return Ok(true),
        Ok(false) => {
            // The token killed the language; rewind to the pre-feed
            // derivative (restores viability) and repair from there.
            backend.rollback(&cp)?;
            false
        }
        // Unknown kinds error *before* touching session state, so the
        // pre-feed state is still current — repairable (the lexer matched
        // something the grammar has no terminal for).
        Err(e) if e.is_unknown_kind() => true,
        Err(e) => return Err(e),
    };
    let started = std::time::Instant::now();
    let result = repair_at(backend, rs, index, tok, lookahead, unknown);
    backend.record_recover_span(started.elapsed().as_nanos() as u64);
    result
}

/// Post-exhaustion salvage: feed the token if it still fits, otherwise
/// drop it with a (coalesced) diagnostic and keep the session viable.
fn salvage_feed(
    backend: &mut dyn Parser,
    rs: &mut RecoveryState,
    index: usize,
    tok: &InputToken<'_>,
) -> Result<bool, BackendError> {
    if !backend.is_viable() {
        return backend.feed(&tok.kind, &tok.text);
    }
    let cp = backend.checkpoint()?;
    match backend.feed(&tok.kind, &tok.text) {
        Ok(true) => return Ok(true),
        Ok(false) => backend.rollback(&cp)?,
        Err(e) if e.is_unknown_kind() => {}
        Err(e) => return Err(e),
    }
    rs.note_dropped(index, tok);
    Ok(true)
}

/// The repair engine at one failure point: probe candidates, score the
/// three repair shapes, apply the winner, emit the diagnostic.
fn repair_at(
    backend: &mut dyn Parser,
    rs: &mut RecoveryState,
    index: usize,
    tok: &InputToken<'_>,
    lookahead: &[InputToken<'_>],
    unknown: bool,
) -> Result<bool, BackendError> {
    if !rs.can_afford(min_cost(&rs.budget)) || rs.flailing(index) {
        rs.note_exhausted(index, tok.span);
        return if unknown {
            // Can't even feed it raw; drop it without charge so the
            // salvage path keeps the session alive for the rest.
            Ok(backend.is_viable())
        } else {
            salvage_feed(backend, rs, index, tok)
        };
    }

    let mut expected = backend.expected_kinds();
    expected.sort();
    expected.truncate(rs.budget.max_candidates);
    let la_max = rs.budget.lookahead.min(lookahead.len());
    // In the input's tail (the last few tokens) survival stops
    // discriminating — there is little or nothing left to survive — so
    // additionally rank by whether the repaired state can consume the
    // remaining tail and still *finish*.
    let frontier = lookahead.len() <= FRONTIER_PROBE_DEPTH as usize;

    let mut options: Vec<Option_> = Vec::new();
    // Skip is always viable: the state is untouched and the lookahead
    // continues from it.
    if rs.can_afford(rs.budget.skip_cost) {
        let mut progress = probe(backend, &[], lookahead, la_max)?.expect("empty probe is viable");
        if frontier {
            progress += frontier_bonus(backend, &[], lookahead, rs.budget.max_candidates)?;
        }
        options.push(Option_ {
            kind: RepairKind::Skip,
            cost: rs.budget.skip_cost,
            progress,
            rank: 2,
        });
    }
    for cand in &expected {
        // Anti-cascade veto: a kind that keeps winning dense repairs
        // stops competing; skip and the other candidates take over.
        if rs.overused(cand, index) {
            continue;
        }
        if rs.can_afford(rs.budget.substitute_cost) {
            let seq = [(cand.as_str(), tok.text.as_ref())];
            if let Some(la) = probe(backend, &seq, lookahead, la_max)? {
                let bonus = if frontier {
                    frontier_bonus(backend, &seq, lookahead, rs.budget.max_candidates)?
                } else {
                    0
                };
                options.push(Option_ {
                    kind: RepairKind::Substitute(cand.clone()),
                    cost: rs.budget.substitute_cost,
                    progress: 1 + la + bonus,
                    rank: 1,
                });
            }
        }
        // Insertion keeps the offending token, so it is only viable when
        // that token parses after the inserted one — which also rules it
        // out entirely for unknown kinds.
        if !unknown && rs.can_afford(rs.budget.insert_cost) {
            let seq = [(cand.as_str(), cand.as_str()), (tok.kind.as_ref(), tok.text.as_ref())];
            if let Some(la) = probe(backend, &seq, lookahead, la_max)? {
                let bonus = if frontier {
                    frontier_bonus(backend, &seq, lookahead, rs.budget.max_candidates)?
                } else {
                    0
                };
                options.push(Option_ {
                    kind: RepairKind::Insert(cand.clone()),
                    cost: rs.budget.insert_cost,
                    progress: 1 + la + bonus,
                    rank: 0,
                });
            }
        }
    }

    let Some(best) = options.into_iter().min_by(|a, b| {
        b.progress
            .cmp(&a.progress)
            .then(a.cost.cmp(&b.cost))
            .then(a.rank.cmp(&b.rank))
            .then_with(|| option_key(&a.kind).cmp(option_key(&b.kind)))
    }) else {
        // Nothing viable is affordable (skip itself over budget): mark
        // the budget spent and fall into the salvage path.
        rs.note_exhausted(index, tok.span);
        return if unknown {
            Ok(backend.is_viable())
        } else {
            salvage_feed(backend, rs, index, tok)
        };
    };

    let found_desc = if unknown {
        format!("unknown token kind {:?}", tok.kind)
    } else {
        format!("unexpected {:?}", tok.kind)
    };
    let message = match &best.kind {
        RepairKind::Skip => format!("{found_desc}; skipped it"),
        RepairKind::Insert(k) => format!("{found_desc}; inserted {k:?} before it"),
        RepairKind::Substitute(k) => format!("{found_desc}; substituted {k:?} for it"),
    };
    match &best.kind {
        RepairKind::Skip => {}
        RepairKind::Insert(k) => {
            backend.feed(k, k)?;
            backend.feed(&tok.kind, &tok.text)?;
        }
        RepairKind::Substitute(k) => {
            backend.feed(k, &tok.text)?;
        }
    }
    if let RepairKind::Insert(k) | RepairKind::Substitute(k) = &best.kind {
        rs.note_repair_kind(index, k);
    }
    rs.recent_repairs.retain(|i| index.saturating_sub(*i) <= FLAIL_WINDOW);
    rs.recent_repairs.push(index);
    rs.charge(best.cost);
    rs.diagnostics.push(Diagnostic {
        token_index: index,
        span: tok.span,
        position: None,
        found: Some(tok.kind.to_string()),
        expected,
        repair: Some(Repair { kind: best.kind, cost: best.cost }),
        severity: Severity::Error,
        message,
    });
    Ok(true)
}

/// Tail scoring: trial-feed `seq`, then the remaining input tail, then
/// ask whether the resulting state can still finish — a sentence already,
/// or completable by a short insertion sequence. Repairs that consume the
/// input's tail into unfinishable structure (an opened paren at the last
/// token) get no bonus and lose to repairs — or a plain skip — that leave
/// the parse closeable by the end-of-input completion search. The session
/// is restored either way.
fn frontier_bonus(
    backend: &mut dyn Parser,
    seq: &[(&str, &str)],
    tail: &[InputToken<'_>],
    max_candidates: usize,
) -> Result<usize, BackendError> {
    let cp = backend.checkpoint()?;
    let mut viable = true;
    for (kind, text) in seq {
        match backend.feed(kind, text) {
            Ok(true) => {}
            Ok(false) => {
                viable = false;
                break;
            }
            Err(e) if e.is_unknown_kind() => {
                viable = false;
                break;
            }
            Err(e) => {
                let _ = backend.rollback(&cp);
                return Err(e);
            }
        }
    }
    if viable {
        for t in tail {
            match backend.feed(&t.kind, &t.text) {
                Ok(true) => {}
                Ok(false) => {
                    viable = false;
                    break;
                }
                Err(e) if e.is_unknown_kind() => {
                    viable = false;
                    break;
                }
                Err(e) => {
                    let _ = backend.rollback(&cp);
                    return Err(e);
                }
            }
        }
    }
    let bonus = if viable
        && (backend.prefix_is_sentence()?
            || find_completion(backend, FRONTIER_PROBE_DEPTH, max_candidates)?.is_some())
    {
        4
    } else {
        0
    };
    backend.rollback(&cp)?;
    Ok(bonus)
}

/// Depth of the completion probe inside [`frontier_bonus`] — shallower
/// than [`EOF_SEARCH_DEPTH`] because it runs per candidate repair, not
/// once per parse.
const FRONTIER_PROBE_DEPTH: u32 = 2;

fn option_key(kind: &RepairKind) -> &str {
    match kind {
        RepairKind::Skip => "",
        RepairKind::Insert(k) | RepairKind::Substitute(k) => k,
    }
}

/// Trial-runs one repair shape on the live session: feed `seq`, then up
/// to `la_max` lookahead tokens, then rewind. `Some(la)` = every `seq`
/// feed was viable and `la` lookahead tokens followed; `None` = the shape
/// is not viable here. The session is restored either way.
fn probe(
    backend: &mut dyn Parser,
    seq: &[(&str, &str)],
    lookahead: &[InputToken<'_>],
    la_max: usize,
) -> Result<Option<usize>, BackendError> {
    let cp = backend.checkpoint()?;
    let mut viable = true;
    for (kind, text) in seq {
        match backend.feed(kind, text) {
            Ok(true) => {}
            Ok(false) => {
                viable = false;
                break;
            }
            Err(e) if e.is_unknown_kind() => {
                viable = false;
                break;
            }
            Err(e) => {
                let _ = backend.rollback(&cp);
                return Err(e);
            }
        }
    }
    let mut la = 0;
    if viable {
        for t in lookahead.iter().take(la_max) {
            match backend.feed(&t.kind, &t.text) {
                Ok(true) => la += 1,
                Ok(false) => break,
                Err(e) if e.is_unknown_kind() => break,
                Err(e) => {
                    let _ = backend.rollback(&cp);
                    return Err(e);
                }
            }
        }
    }
    backend.rollback(&cp)?;
    Ok(viable.then_some(la))
}

/// Maximum depth of the end-of-input insertion search. Real truncations
/// (a dropped `)` `;` or `end .`) complete within this; anything deeper
/// is better reported than guessed.
const EOF_SEARCH_DEPTH: u32 = 3;

/// End-of-input repair: if the session is viable but the prefix is not a
/// sentence, search (bounded depth-first, within budget) for a cheapest
/// insertion sequence that completes it, apply it, and emit one
/// diagnostic per inserted token.
pub(crate) fn repair_eof(
    backend: &mut dyn Parser,
    rs: &mut RecoveryState,
) -> Result<(), BackendError> {
    if !backend.is_viable() || backend.prefix_is_sentence()? {
        return Ok(());
    }
    let started = std::time::Instant::now();
    // The completion search runs even on an exhausted budget: it is
    // depth-bounded on its own ([`EOF_SEARCH_DEPTH`]), it is the last
    // repair of the parse, and a truncated file is the most common
    // malformation — salvage that leaves the session viable would be
    // pointless if the close could then never be inserted.
    let affordable = EOF_SEARCH_DEPTH;
    let index = rs.next_index;
    let found = find_completion(backend, affordable, rs.budget.max_candidates)?;
    match found {
        Some(seq) => {
            for kind in seq {
                let expected = {
                    let mut e = backend.expected_kinds();
                    e.sort();
                    e.truncate(rs.budget.max_candidates);
                    e
                };
                backend.feed(&kind, &kind)?;
                rs.charge(rs.budget.insert_cost);
                rs.diagnostics.push(Diagnostic {
                    token_index: index,
                    span: rs.eof_span(),
                    position: None,
                    found: None,
                    expected,
                    repair: Some(Repair {
                        kind: RepairKind::Insert(kind.clone()),
                        cost: rs.budget.insert_cost,
                    }),
                    severity: Severity::Error,
                    message: format!(
                        "unexpected end of input; inserted {kind:?} to complete the parse"
                    ),
                });
            }
        }
        None => {
            let span = rs.eof_span();
            rs.note_exhausted(index, span);
        }
    }
    backend.record_recover_span(started.elapsed().as_nanos() as u64);
    Ok(())
}

/// Depth-first search for the shortest (then lexicographically first)
/// insertion sequence completing the current prefix. Iterative deepening
/// keeps it shortest-first; the candidate sets are tiny in practice.
fn find_completion(
    backend: &mut dyn Parser,
    max_depth: u32,
    max_candidates: usize,
) -> Result<Option<Vec<String>>, BackendError> {
    for depth in 1..=max_depth {
        if let Some(seq) = complete_at_depth(backend, depth, max_candidates)? {
            return Ok(Some(seq));
        }
    }
    Ok(None)
}

fn complete_at_depth(
    backend: &mut dyn Parser,
    depth: u32,
    max_candidates: usize,
) -> Result<Option<Vec<String>>, BackendError> {
    let mut candidates = backend.expected_kinds();
    candidates.sort();
    candidates.truncate(max_candidates);
    for cand in candidates {
        let cp = backend.checkpoint()?;
        let alive = match backend.feed(&cand, &cand) {
            Ok(v) => v,
            Err(e) => {
                let _ = backend.rollback(&cp);
                return Err(e);
            }
        };
        let hit = if !alive {
            None
        } else if depth == 1 {
            backend.prefix_is_sentence()?.then(Vec::new)
        } else {
            complete_at_depth(backend, depth - 1, max_candidates)?
        };
        backend.rollback(&cp)?;
        if let Some(mut rest) = hit {
            rest.insert(0, cand);
            return Ok(Some(rest));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{backends, PwdBackend, Session};
    use crate::grammar::Cfg;
    use crate::grammar::CfgBuilder;

    fn matched_pairs() -> Cfg {
        let mut g = CfgBuilder::new("S");
        g.terminals(&["a", "b"]);
        g.rule("S", &["a", "S", "b"]);
        g.rule("S", &["a", "b"]);
        g.build().expect("valid grammar")
    }

    #[test]
    fn severity_labels() {
        assert_eq!(Severity::Error.as_str(), "error");
        assert_eq!(Severity::Warning.to_string(), "warning");
        assert_eq!(Severity::Note.to_string(), "note");
    }

    #[test]
    fn clean_input_produces_no_diagnostics_on_any_backend() {
        let cfg = matched_pairs();
        for backend in &mut backends(&cfg) {
            let mut s = Session::open(backend.as_mut()).unwrap();
            s.enable_recovery(RecoveryBudget::default());
            s.feed_all(&["a", "a", "b", "b"]).unwrap();
            let (ok, diags) = s.finish_with_diagnostics().unwrap();
            assert!(ok);
            assert!(diags.is_empty(), "clean input, but {diags:?}");
        }
    }

    #[test]
    fn missing_token_is_inserted_on_every_backend() {
        let cfg = matched_pairs();
        for backend in &mut backends(&cfg) {
            let name = backend.name();
            let mut s = Session::open(backend.as_mut()).unwrap();
            s.enable_recovery(RecoveryBudget::default());
            // "a a b" lacks the final "b".
            s.feed_all(&["a", "a", "b"]).unwrap();
            let (ok, diags) = s.finish_with_diagnostics().unwrap();
            assert!(ok, "{name}: repaired to a sentence");
            assert_eq!(diags.len(), 1, "{name}: {diags:?}");
            assert!(
                matches!(
                    diags[0].repair,
                    Some(Repair { kind: RepairKind::Insert(ref k), .. }) if k == "b"
                ),
                "{name}: {diags:?}"
            );
        }
    }

    #[test]
    fn extra_token_is_skipped_or_absorbed_on_every_backend() {
        let cfg = matched_pairs();
        for backend in &mut backends(&cfg) {
            let name = backend.name();
            let mut s = Session::open(backend.as_mut()).unwrap();
            s.enable_recovery(RecoveryBudget::default());
            // "a b b" has a stray trailing "b".
            s.feed_all(&["a", "b", "b"]).unwrap();
            let (ok, diags) = s.finish_with_diagnostics().unwrap();
            assert!(ok, "{name}: repaired to a sentence");
            assert!(!diags.is_empty(), "{name}: the stray token was diagnosed");
        }
    }

    #[test]
    fn unknown_kind_is_repaired_not_an_error() {
        let cfg = matched_pairs();
        let mut backend = PwdBackend::improved(&cfg);
        let mut s = Session::open(&mut backend).unwrap();
        s.enable_recovery(RecoveryBudget::default());
        s.feed("a", "a").unwrap();
        s.feed("ZZZ", "zzz").unwrap();
        s.feed("b", "b").unwrap();
        let (ok, diags) = s.finish_with_diagnostics().unwrap();
        assert!(ok, "unknown token repaired away");
        assert!(diags.iter().any(|d| d.message.contains("unknown token kind")), "{diags:?}");
    }

    #[test]
    fn budget_exhaustion_salvages_with_a_note() {
        let cfg = matched_pairs();
        let mut backend = PwdBackend::improved(&cfg);
        let mut s = Session::open(&mut backend).unwrap();
        s.enable_recovery(RecoveryBudget { max_repairs: 1, ..RecoveryBudget::default() });
        // Repairs the first stray "b" (one insert — the whole budget),
        // exhausts, then salvages by dropping the rest instead of dying.
        s.feed_all(&["b", "b", "a"]).unwrap();
        let (ok, diags) = s.finish_with_diagnostics().unwrap();
        assert!(ok, "salvage keeps the repaired prefix parseable");
        assert!(
            diags.iter().any(|d| d.severity == Severity::Note),
            "exhaustion is noted: {diags:?}"
        );
        // The unparseable trailing token is dropped (charged nothing)
        // rather than killing the parse.
        assert!(
            diags.iter().any(|d| d.message.contains("dropped")),
            "salvage region is diagnosed: {diags:?}"
        );
    }

    #[test]
    fn diagnostics_render_with_carets() {
        let d = Diagnostic {
            token_index: 1,
            span: Some(Span::new(2, 3)),
            position: None,
            found: Some("b".into()),
            expected: vec!["a".into()],
            repair: Some(Repair { kind: RepairKind::Skip, cost: 2 }),
            severity: Severity::Error,
            message: "unexpected \"b\"; skipped it".into(),
        };
        let rendered = d.render("a b c");
        assert!(rendered.starts_with("error: unexpected \"b\"; skipped it"), "{rendered}");
        assert!(rendered.contains(" --> 1:3"), "{rendered}");
        assert!(rendered.contains("^"), "{rendered}");
        assert!(rendered.contains("expected one of: \"a\""), "{rendered}");
    }

    #[test]
    fn attach_positions_fills_line_col() {
        let mut diags = vec![Diagnostic {
            token_index: 0,
            span: Some(Span::new(4, 5)),
            position: None,
            found: None,
            expected: Vec::new(),
            repair: None,
            severity: Severity::Error,
            message: "x".into(),
        }];
        attach_positions(&mut diags, "ab\ncd");
        assert_eq!(diags[0].position, Some(Position { line: 2, column: 2 }));
    }
}
