//! `derp` — parsing with derivatives, reproduced.
//!
//! An umbrella crate for the reproduction of *On the Complexity and
//! Performance of Parsing with Derivatives* (Adams, Hollenbeck & Might,
//! PLDI 2016), named after the authors' Racket artifact `derp-3`. It
//! re-exports the workspace crates:
//!
//! * [`core`] (`pwd-core`) — the PWD engine: derivatives, nullability fixed
//!   points, compaction, memoization, parse forests;
//! * [`grammar`] (`pwd-grammar`) — CFGs, compilation to expression graphs,
//!   the benchmark grammar corpus, workload generators;
//! * [`regex`] (`pwd-regex`) — Brzozowski regex derivatives and DFAs;
//! * [`lex`] (`pwd-lex`) — longest-match lexers and the Python tokenizer;
//! * [`earley`] (`pwd-earley`) and [`glr`] (`pwd-glr`) — the baseline
//!   parsers of the paper's evaluation.
//!
//! On top of the re-exports, [`api`] defines the backend-agnostic
//! [`Parser`]/[`Recognizer`] trait layer that drives all three parser
//! families through one **streaming** lifecycle: text flows through a
//! zero-copy [`api::TokenSource`] into an incremental [`api::Session`]
//! (`open → feed → checkpoint/rollback → finish`), and the batch
//! `recognize*` calls are thin shims over the same path. The [`recover`]
//! module adds bounded-budget error recovery on top: sessions opt in with
//! [`api::Session::enable_recovery`] and get repaired parses plus spanned
//! [`Diagnostic`]s instead of a dead session on malformed input.
//!
//! # Quick start
//!
//! ```
//! use derp::grammar::{gen, grammars, Compiled};
//! use derp::core::ParserConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = gen::python_source(100, 1);
//! let lexemes = derp::lex::tokenize_python(&src)?;
//! let mut parser = Compiled::compile(&grammars::python::cfg(), ParserConfig::improved());
//! assert!(parser.recognize_lexemes(&lexemes)?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod recover;

pub use api::{
    BackendError, BackendMetrics, Checkpoint, FeedOutcome, ParseCount, Parser, Recognizer, Session,
    TokenSource,
};
pub use pwd_core as core;
pub use pwd_earley as earley;
pub use pwd_glr as glr;
pub use pwd_grammar as grammar;
pub use pwd_lex as lex;
pub use pwd_obs as obs;
pub use pwd_regex as regex;
pub use recover::{Diagnostic, RecoveryBudget, Repair, RepairKind, Severity};
